//! IBM-style fair-share queuing.
//!
//! "Fair-share queuing executes jobs on a quantum system in a dynamic order
//! so that no user can monopolize the system ... jobs from various
//! providers are inter-weaved in a non-trivial manner, and the order in
//! which jobs complete is not necessarily the order in which they were
//! submitted" (paper §II-B ⑤). Each provider accumulates exponentially
//! decayed usage; the next job comes from the eligible provider with the
//! lowest usage-to-share ratio (FIFO within a provider).
//!
//! # Incremental selection
//!
//! Exponential decay multiplies every provider's usage by the *same*
//! factor, so the usage/share **ordering** between providers is invariant
//! between charges — only a charge (or injection) can reorder anyone, and
//! it reorders exactly one provider. The queue exploits this by giving
//! each provider a decay-invariant sort key
//!
//! ```text
//! key(p) = log2(usage_p(t_p) / share_p) + t_p / half_life
//! ```
//!
//! where `usage_p(t_p)` is the provider's decayed usage valued at its own
//! last-touch time `t_p`: the decayed usage at any later `t` is
//! `usage_p(t_p) · 2^-((t - t_p)/half_life)`, whose log2 is `key(p) − t /
//! half_life` — the same `t`-term for every provider, so comparing cached
//! keys at *any* time reproduces the usage-ratio order without decaying
//! anything. A provider's key is recomputed only when it is charged or
//! injected (one `log2` instead of an O(P) `decay_to` sweep), and a
//! winner tree over the providers repositions just that provider in
//! O(log P); `pop` reads the root. The O(P) scan over the same keys is
//! retained behind [`with_scan_selection`](FairShareQueue::with_scan_selection)
//! as the in-process oracle — both selectors consult the *identical* key
//! array and tie-break chain `(key, front submit time, provider index)`,
//! so their pop sequences are bit-identical by construction (the
//! fair-share proptest in `tests/properties.rs` pins this over random
//! charge/inject/push/pop schedules).

use std::collections::VecDeque;

use crate::{JobSpec, QueueItem};

/// Sentinel for "no provider" in the winner tree.
const NONE: u32 = u32::MAX;

/// A single machine's fair-share queue.
///
/// Generic over the queued item ([`QueueItem`]): the public simulation
/// API queues full [`JobSpec`]s, the live engine queues compact slab
/// handles.
#[derive(Debug, Clone)]
pub struct FairShareQueue<T = JobSpec> {
    /// Per-provider FIFO queues (indexed by provider id).
    queues: Vec<VecDeque<T>>,
    /// Per-provider share entitlement (default 1.0).
    shares: Vec<f64>,
    /// Per-provider decayed usage, seconds, valued at `touch_s` — decayed
    /// lazily (closed-form per segment) instead of eagerly sweeping every
    /// provider on every queue event.
    usage: Vec<f64>,
    /// Per-provider time its `usage` is valued at.
    touch_s: Vec<f64>,
    /// Per-provider decay-invariant sort key (see module docs); `-inf`
    /// for zero usage.
    key: Vec<f64>,
    /// Per-provider lifetime charged seconds, *undecayed* (audit
    /// accounting: must equal the sum of the provider's execution
    /// intervals on this machine).
    charged_raw: Vec<f64>,
    /// Usage half-life, seconds.
    half_life_s: f64,
    /// Total queued jobs.
    len: usize,
    /// Winner tree: `tree[1]` is the best eligible provider, leaves for
    /// provider `p` at `leaf_base + p`. `NONE` marks empty subtrees.
    tree: Vec<u32>,
    /// First leaf index (= padded provider count, a power of two).
    leaf_base: usize,
    /// Use the O(P) scan selector instead of the winner tree (the
    /// property-matched oracle / reference engine).
    scan: bool,
}

impl<T: QueueItem> FairShareQueue<T> {
    /// Create a queue for `num_providers` providers with uniform shares.
    #[must_use]
    pub fn new(num_providers: usize, half_life_s: f64) -> Self {
        let leaf_base = num_providers.next_power_of_two().max(1);
        FairShareQueue {
            queues: (0..num_providers).map(|_| VecDeque::new()).collect(),
            shares: vec![1.0; num_providers],
            usage: vec![0.0; num_providers],
            touch_s: vec![0.0; num_providers],
            key: vec![f64::NEG_INFINITY; num_providers],
            charged_raw: vec![0.0; num_providers],
            half_life_s,
            len: 0,
            tree: vec![NONE; 2 * leaf_base],
            leaf_base,
            scan: false,
        }
    }

    /// Switch this queue to the O(P) scan selector. Pop-for-pop
    /// bit-identical to the default winner-tree selector (both order by
    /// the same cached `(key, front submit, provider)` chain); kept as
    /// the in-process oracle and the reference-engine path.
    #[must_use]
    pub fn with_scan_selection(mut self) -> Self {
        self.scan = true;
        self
    }

    /// Override a provider's share entitlement (larger = more throughput).
    ///
    /// # Panics
    ///
    /// Panics if `share <= 0` or the provider is unknown.
    pub fn set_share(&mut self, provider: u32, share: f64) {
        assert!(share > 0.0, "share must be positive");
        let p = provider as usize;
        self.shares[p] = share;
        self.rekey(p);
    }

    /// Number of queued jobs (excluding any executing job).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueue a job.
    ///
    /// # Panics
    ///
    /// Panics if the job's provider id is out of range.
    pub fn push(&mut self, job: T) {
        let p = job.provider() as usize;
        self.queues[p].push_back(job);
        self.len += 1;
        if self.queues[p].len() == 1 {
            // Became eligible; a push behind an existing front changes
            // neither the key nor the tie-break, so the tree stands.
            self.update_path(p);
        }
    }

    /// Pop the next job under fair-share order: the eligible provider
    /// with the lowest decayed usage-to-share ratio, ties broken by
    /// earliest front submission then lowest provider index. (`now_s` is
    /// retained for signature stability; selection reads the cached
    /// decay-invariant keys, which need no decay sweep — see the module
    /// docs.)
    pub fn pop(&mut self, now_s: f64) -> Option<T> {
        debug_assert!(!now_s.is_nan(), "pop time must not be NaN");
        let p = if self.scan {
            self.select_scan()?
        } else {
            self.select_tree()?
        };
        let job = self.queues[p].pop_front();
        if job.is_some() {
            self.len -= 1;
            self.update_path(p);
        }
        job
    }

    /// Charge `seconds` of machine usage to `provider` at time `now_s`:
    /// the provider's usage decays closed-form to `now_s`, the fresh
    /// seconds land at full weight, and the provider's sort key is
    /// recomputed (no other provider moves).
    pub fn charge(&mut self, provider: u32, seconds: f64, now_s: f64) {
        let p = provider as usize;
        self.advance(p, now_s);
        self.usage[p] += seconds;
        self.charged_raw[p] += seconds;
        self.rekey(p);
    }

    /// Lifetime per-provider charged seconds, undecayed. The audit layer
    /// checks these against the sum of each provider's execution intervals.
    #[must_use]
    pub fn charged_raw(&self) -> &[f64] {
        &self.charged_raw
    }

    /// Install usage charged *elsewhere* (another gateway shard) into the
    /// decayed accumulator only. Scheduling then orders providers by their
    /// global footprint, while `charged_raw` keeps counting only seconds
    /// executed on *this* machine — preserving the per-machine
    /// conservation law the auditor checks (charged_raw == sum of local
    /// execution intervals).
    pub fn inject_usage(&mut self, provider: u32, seconds: f64, now_s: f64) {
        let p = provider as usize;
        self.advance(p, now_s);
        self.usage[p] += seconds;
        self.rekey(p);
    }

    /// Remove a specific queued job by id (user cancellation). Returns the
    /// job if it was still queued.
    pub fn remove(&mut self, job_id: u64) -> Option<T> {
        for p in 0..self.queues.len() {
            if let Some(pos) = self.queues[p].iter().position(|j| j.id() == job_id) {
                self.len -= 1;
                let job = self.queues[p].remove(pos);
                self.update_path(p);
                return job;
            }
        }
        None
    }

    /// Remove a queued job by id when its provider is already known (the
    /// patience-expiry hot path): only that provider's FIFO is scanned.
    pub fn remove_for_provider(&mut self, provider: u32, job_id: u64) -> Option<T> {
        let p = provider as usize;
        let pos = self.queues[p].iter().position(|j| j.id() == job_id)?;
        self.len -= 1;
        let job = self.queues[p].remove(pos);
        self.update_path(p);
        job
    }

    /// Decay `p`'s usage closed-form to `now_s` (no-op for a stale or
    /// equal timestamp, mirroring the old eager sweep's `dt <= 0` guard).
    fn advance(&mut self, p: usize, now_s: f64) {
        let dt = now_s - self.touch_s[p];
        if dt > 0.0 {
            self.usage[p] *= 0.5f64.powf(dt / self.half_life_s);
            self.touch_s[p] = now_s;
        }
    }

    /// Recompute `p`'s decay-invariant key and reposition it in the tree.
    fn rekey(&mut self, p: usize) {
        self.key[p] = (self.usage[p] / self.shares[p]).log2() + self.touch_s[p] / self.half_life_s;
        self.update_path(p);
    }

    /// Winner of two providers (either may be `NONE`): lowest
    /// `(key, front submit, index)`. `a` must come from the left subtree
    /// so full ties resolve to the lower provider index.
    #[inline]
    fn winner(&self, a: u32, b: u32) -> u32 {
        if a == NONE {
            return b;
        }
        if b == NONE {
            return a;
        }
        let (pa, pb) = (a as usize, b as usize);
        match self.key[pa].total_cmp(&self.key[pb]) {
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Greater => b,
            std::cmp::Ordering::Equal => {
                let ta = self.queues[pa].front().map(QueueItem::submit_s);
                let tb = self.queues[pb].front().map(QueueItem::submit_s);
                // Eligible providers always have a front; compare defensively.
                match (ta, tb) {
                    (Some(ta), Some(tb)) if tb.total_cmp(&ta).is_lt() => b,
                    _ => a,
                }
            }
        }
    }

    /// Re-run the matches on `p`'s path to the root (O(log P)).
    fn update_path(&mut self, p: usize) {
        if self.scan {
            return;
        }
        let mut node = self.leaf_base + p;
        self.tree[node] = if self.queues[p].is_empty() {
            NONE
        } else {
            p as u32
        };
        while node > 1 {
            node >>= 1;
            self.tree[node] = self.winner(self.tree[2 * node], self.tree[2 * node + 1]);
        }
    }

    /// Tree selector: the root of the winner tree.
    fn select_tree(&self) -> Option<usize> {
        let w = self.tree[1];
        (w != NONE).then_some(w as usize)
    }

    /// Scan selector (the oracle): a full min over eligible providers on
    /// the same key array and tie-break chain the tree uses.
    fn select_scan(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for p in 0..self.queues.len() {
            if self.queues[p].is_empty() {
                continue;
            }
            best = Some(match best {
                None => p,
                // `winner` keeps the left (lower-index) provider on full
                // ties, and `best < p` here, so the semantics match.
                Some(b) => self.winner(b as u32, p as u32) as usize,
            });
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, provider: u32, submit: f64) -> JobSpec {
        JobSpec {
            id,
            provider,
            machine: 0,
            circuits: 1,
            shots: 1024,
            mean_depth: 10.0,
            mean_width: 2.0,
            submit_s: submit,
            is_study: false,
            patience_s: f64::INFINITY,
        }
    }

    #[test]
    fn fifo_within_provider() {
        let mut q = FairShareQueue::new(1, 3600.0);
        q.push(job(1, 0, 0.0));
        q.push(job(2, 0, 1.0));
        assert_eq!(q.pop(2.0).unwrap().id, 1);
        assert_eq!(q.pop(2.0).unwrap().id, 2);
        assert!(q.pop(2.0).is_none());
    }

    #[test]
    fn low_usage_provider_jumps_ahead() {
        let mut q = FairShareQueue::new(2, 3600.0);
        q.charge(0, 1000.0, 0.0); // provider 0 has been hogging
        q.push(job(1, 0, 0.0));
        q.push(job(2, 1, 5.0)); // later submit, but fresher provider
        assert_eq!(q.pop(10.0).unwrap().id, 2);
        assert_eq!(q.pop(10.0).unwrap().id, 1);
    }

    #[test]
    fn shares_weight_priority() {
        let mut q = FairShareQueue::new(2, 3600.0);
        q.set_share(1, 10.0);
        q.charge(0, 100.0, 0.0);
        q.charge(1, 500.0, 0.0); // more usage but 10x share -> ratio 50 < 100
        q.push(job(1, 0, 0.0));
        q.push(job(2, 1, 1.0));
        assert_eq!(q.pop(2.0).unwrap().id, 2);
    }

    #[test]
    fn usage_decays_over_time() {
        // Old usage is forgiven relative to fresh usage.
        let mut q = FairShareQueue::new(2, 100.0);
        q.charge(0, 1000.0, 0.0); // ancient hog
        let mut later = q.clone();
        // Immediately, provider 0 loses to untouched provider 1.
        q.push(job(1, 0, 0.0));
        q.push(job(2, 1, 1.0));
        assert_eq!(q.pop(0.0).unwrap().id, 2);
        // Ten half-lives later, provider 0's usage ~1s; provider 1 charged
        // 500s recently, so provider 0 now wins.
        later.charge(1, 500.0, 1000.0);
        later.push(job(1, 0, 1000.0));
        later.push(job(2, 1, 1000.5));
        assert_eq!(later.pop(1000.0).unwrap().id, 1);
    }

    #[test]
    fn charge_decays_to_charge_time_first() {
        // Regression: `charge` must decay usage to the charge time before
        // adding. Accounting that adds fresh seconds undecayed (or decays
        // them by the whole elapsed interval afterwards) would produce a
        // spurious 50/50 tie here.
        let mut q = FairShareQueue::new(2, 100.0);
        // Provider 0 works 100 s at t = 0.
        q.charge(0, 100.0, 0.0);
        // One half-life later, provider 1 works 100 s. Correct accounting:
        // provider 0 decays to 50, provider 1 sits at a full 100.
        q.charge(1, 100.0, 100.0);
        // Provider 1's queued job has the earlier submit, so under the
        // buggy tie it would win the tie-break and pop first.
        q.push(job(1, 1, 0.0));
        q.push(job(2, 0, 5.0));
        assert_eq!(q.pop(100.0).unwrap().id, 2, "provider 0 is fresher");
        assert_eq!(q.pop(100.0).unwrap().id, 1);
    }

    #[test]
    fn charged_raw_accumulates_undecayed() {
        let mut q: FairShareQueue = FairShareQueue::new(2, 100.0);
        q.charge(0, 100.0, 0.0);
        q.charge(0, 50.0, 1000.0); // many half-lives later
        q.charge(1, 7.0, 2000.0);
        assert_eq!(q.charged_raw(), &[150.0, 7.0]);
    }

    #[test]
    fn remove_cancels_queued_job() {
        let mut q = FairShareQueue::new(1, 3600.0);
        q.push(job(1, 0, 0.0));
        q.push(job(2, 0, 1.0));
        let removed = q.remove(1).unwrap();
        assert_eq!(removed.id, 1);
        assert_eq!(q.len(), 1);
        assert!(q.remove(99).is_none());
        assert_eq!(q.pop(2.0).unwrap().id, 2);
    }

    #[test]
    fn remove_for_provider_scans_one_fifo() {
        let mut q = FairShareQueue::new(3, 3600.0);
        q.push(job(1, 0, 0.0));
        q.push(job(2, 2, 1.0));
        q.push(job(3, 2, 2.0));
        assert!(q.remove_for_provider(1, 2).is_none(), "wrong provider");
        assert_eq!(q.remove_for_provider(2, 2).unwrap().id, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(3.0).unwrap().id, 1);
        assert_eq!(q.pop(3.0).unwrap().id, 3);
    }

    #[test]
    fn interleaving_across_providers() {
        // With equal shares and continuous charging, providers alternate.
        let mut q = FairShareQueue::new(2, 1e12);
        for i in 0..4 {
            q.push(job(i, 0, i as f64));
        }
        for i in 4..8 {
            q.push(job(i, 1, i as f64));
        }
        let mut order = Vec::new();
        let mut now = 10.0;
        while let Some(j) = q.pop(now) {
            q.charge(j.provider, 60.0, now);
            order.push(j.provider);
            now += 60.0;
        }
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn scan_selection_matches_tree() {
        // Deterministic interleaved schedule, popped twice — once per
        // selector. (The proptest covers random schedules.)
        let build = || {
            let mut q = FairShareQueue::new(5, 7200.0);
            for i in 0..25u64 {
                q.push(job(i, (i % 5) as u32, i as f64));
            }
            q.charge(2, 500.0, 3.0);
            q.inject_usage(4, 120.0, 7.0);
            q.charge(0, 30.0, 11.0);
            q
        };
        let mut tree = build();
        let mut scan = build().with_scan_selection();
        let mut now = 20.0;
        loop {
            let a = tree.pop(now);
            let b = scan.pop(now);
            assert_eq!(
                a.as_ref().map(|j| j.id),
                b.as_ref().map(|j| j.id),
                "selectors diverged at t={now}"
            );
            let Some(j) = a else { break };
            tree.charge(j.provider, 45.0, now);
            scan.charge(j.provider, 45.0, now);
            now += 45.0;
        }
    }

    #[test]
    #[should_panic(expected = "share must be positive")]
    fn zero_share_rejected() {
        let mut q: FairShareQueue = FairShareQueue::new(1, 10.0);
        q.set_share(0, 0.0);
    }
}
