//! Ablation driver behind `BENCH_cloud.json`: million-job-smoke-shaped
//! throughput points that isolate each DES hot-path optimization.
//!
//! Every point streams the same [`PopulationTrace`] through the same
//! chunked submit/step/reconcile loop as `smoke_million_jobs`, varying
//! only the engine under test:
//!
//! - `trace_gen_only`  — workload sampling alone (upper bound on any
//!   DES speedup; the DES cost is `full - trace_gen`);
//! - `des_reference`   — binary-heap event queues + O(P) scan
//!   fair-share (the pre-overhaul structures, kept callable);
//! - `des_optimized`   — calendar event queues + incremental
//!   fair-share (the default engine).
//!
//! Prints one `BENCH {json}` line per point (`jobs_per_sec` plus
//! `mean_ns` per job) so ci.sh can grep them the same way it greps the
//! criterion benches. Run with `--jobs N` to change the trace size
//! (default 200k; BENCH_cloud.json is recorded at the full million).

use std::time::Instant;

use qcs_cloud::{CloudConfig, DesEngine, RecordSink};
use qcs_gateway::FleetSim;
use qcs_machine::Fleet;
use qcs_workload::{PopulationConfig, PopulationTrace};

const SHARDS: usize = 4;
const CHUNK: usize = 20_000;

fn parse_args() -> (u64, u32) {
    let (mut jobs, mut reps) = (200_000, 3);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let value = args.next().expect("--jobs needs a value");
                jobs = value.parse().expect("--jobs needs an integer");
            }
            "--reps" => {
                let value = args.next().expect("--reps needs a value");
                reps = value.parse().expect("--reps needs an integer");
            }
            other => panic!("unknown argument {other}; expected --jobs N / --reps N"),
        }
    }
    (jobs, reps)
}

fn emit(id: &str, jobs: u64, elapsed_s: f64) {
    let jobs_per_sec = jobs as f64 / elapsed_s;
    let mean_ns = elapsed_s * 1e9 / jobs as f64;
    println!(
        "BENCH {{\"id\":\"cloud_des/{id}\",\"mean_ns\":{mean_ns:.1},\"jobs_per_sec\":{jobs_per_sec:.0},\"jobs\":{jobs}}}"
    );
}

fn population(jobs: u64) -> PopulationConfig {
    PopulationConfig {
        jobs,
        ..PopulationConfig::million()
    }
}

fn bench_trace_gen(fleet: &Fleet, jobs: u64, reps: u32) {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut trace = PopulationTrace::new(fleet, population(jobs));
        let started = Instant::now();
        let mut checksum = 0.0f64;
        let mut count = 0u64;
        for job in trace.by_ref() {
            checksum += job.submit_s;
            count += 1;
        }
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(count, jobs);
        assert!(checksum.is_finite());
        best = best.min(elapsed);
    }
    emit("trace_gen_only", jobs, best);
}

fn bench_des_once(fleet: &Fleet, jobs: u64, engine: DesEngine) -> f64 {
    let config = CloudConfig {
        num_providers: population(jobs).providers,
        record_sink: RecordSink::streaming(population(jobs).seed),
        engine,
        ..CloudConfig::default()
    };
    let mut sim = FleetSim::new(fleet, config, SHARDS);
    let mut trace = PopulationTrace::new(fleet, population(jobs));
    let started = Instant::now();
    let mut submitted = 0u64;
    loop {
        let mut last_submit_s = 0.0;
        let mut in_chunk = 0u64;
        for job in trace.by_ref().take(CHUNK) {
            last_submit_s = job.submit_s;
            sim.submit(job).expect("chunked submit admits every job");
            in_chunk += 1;
        }
        if in_chunk == 0 {
            break;
        }
        submitted += in_chunk;
        sim.step_until(last_submit_s);
        sim.reconcile();
    }
    sim.run_to_completion();
    sim.reconcile();
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(submitted, jobs);
    let [completed, errored, cancelled] = sim.outcome_counts();
    assert_eq!(completed + errored + cancelled, jobs);
    elapsed
}

/// Best-of-`reps`, engines interleaved so a noise burst on the shared
/// runner cannot land entirely on one engine's repetitions.
fn bench_des(fleet: &Fleet, jobs: u64, reps: u32) {
    let mut best_ref = f64::INFINITY;
    let mut best_opt = f64::INFINITY;
    for _ in 0..reps {
        best_ref = best_ref.min(bench_des_once(fleet, jobs, DesEngine::Reference));
        best_opt = best_opt.min(bench_des_once(fleet, jobs, DesEngine::Optimized));
    }
    emit("des_reference", jobs, best_ref);
    emit("des_optimized", jobs, best_opt);
}

fn main() {
    let (jobs, reps) = parse_args();
    let fleet = Fleet::ibm_like();
    bench_trace_gen(&fleet, jobs, reps);
    bench_des(&fleet, jobs, reps);
}
