//! Transpiler error types.

use std::fmt;

/// Errors produced by transpilation passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranspileError {
    /// The circuit needs more qubits than the target provides.
    CircuitTooWide {
        /// Qubits required by the circuit.
        circuit_qubits: usize,
        /// Qubits available on the target.
        target_qubits: usize,
    },
    /// No connected region of the required size exists on the target.
    NoConnectedRegion {
        /// Required region size.
        required: usize,
        /// Target size.
        target_qubits: usize,
    },
    /// A layout mapped two logical qubits to the same physical qubit.
    InvalidLayout {
        /// The physical qubit used twice.
        physical_qubit: usize,
    },
    /// A two-qubit gate spans physically disconnected qubits.
    DisconnectedQubits {
        /// First physical qubit.
        a: usize,
        /// Second physical qubit.
        b: usize,
        /// Target name.
        target: String,
    },
    /// Routing exceeded its SWAP safety budget (indicates a pathological
    /// input or an internal bug).
    RoutingBudgetExceeded {
        /// SWAPs inserted before giving up.
        swaps: usize,
        /// Target name.
        target: String,
    },
}

impl fmt::Display for TranspileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranspileError::CircuitTooWide {
                circuit_qubits,
                target_qubits,
            } => write!(
                f,
                "circuit needs {circuit_qubits} qubits but target has {target_qubits}"
            ),
            TranspileError::NoConnectedRegion {
                required,
                target_qubits,
            } => write!(
                f,
                "no connected region of {required} qubits on a {target_qubits}-qubit target"
            ),
            TranspileError::InvalidLayout { physical_qubit } => {
                write!(f, "layout maps physical qubit {physical_qubit} twice")
            }
            TranspileError::DisconnectedQubits { a, b, target } => {
                write!(f, "qubits {a} and {b} are disconnected on target {target}")
            }
            TranspileError::RoutingBudgetExceeded { swaps, target } => {
                write!(f, "routing exceeded {swaps} swaps on target {target}")
            }
        }
    }
}

impl std::error::Error for TranspileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TranspileError::CircuitTooWide {
            circuit_qubits: 10,
            target_qubits: 5,
        };
        assert!(e.to_string().contains("10 qubits"));
        let e = TranspileError::DisconnectedQubits {
            a: 1,
            b: 2,
            target: "x".into(),
        };
        assert!(e.to_string().contains("disconnected"));
    }
}
