//! Machine-selection advisor: the fidelity/queue-time trade-off of the
//! paper's Recommendation ③ ("users can be allowed to trade-off fidelity
//! for low queuing time and vice-versa").
//!
//! For a given benchmark circuit, the advisor compiles it for every
//! machine that fits, scores expected fidelity from the compile-time CX
//! metrics, estimates queue time from current machine load, and prints a
//! ranked menu.
//!
//! ```sh
//! cargo run --release --example machine_selection
//! ```

use qcs::cloud::{CloudConfig, Simulation};
use qcs::machine::Fleet;
use qcs::sim::qft_pos_circuit;
use qcs::transpiler::{transpile, Target, TranspileOptions};
use qcs::workload::{generate, WorkloadConfig};

struct Option_ {
    machine: String,
    qubits: usize,
    public: bool,
    esp: f64,
    cx_total: usize,
    pending: f64,
    est_queue_min: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = Fleet::ibm_like();
    let benchmark = qft_pos_circuit(4);
    println!(
        "advising for: qft_pos_4 ({} qubits, {} CX)\n",
        benchmark.num_qubits(),
        benchmark.cx_count()
    );

    // Estimate current load by replaying a week of synthetic demand.
    let workload = generate(
        &fleet,
        &WorkloadConfig {
            days: 7.0,
            study_jobs: 0,
            ..WorkloadConfig::default()
        },
    );
    let result = Simulation::new(fleet.clone(), CloudConfig::default()).run(workload.jobs);

    let mut options: Vec<Option_> = Vec::new();
    let now_h = 5.0 * 24.0; // mid-week snapshot
    for (idx, machine) in fleet.iter().enumerate() {
        if machine.num_qubits() < benchmark.num_qubits() {
            continue;
        }
        let target = Target::from_machine(machine, now_h);
        let Ok(compiled) = transpile(&benchmark, &target, TranspileOptions::full()) else {
            continue;
        };
        let snapshot = target.snapshot();
        let esp = compiled.output_metrics.estimated_success_probability(
            snapshot.avg_single_qubit_error(),
            snapshot.avg_cx_error(),
            snapshot.avg_readout_error(),
        );
        let pending = result.mean_pending(idx, (now_h - 24.0) * 3600.0, now_h * 3600.0);
        // Rough queue estimate: pending jobs x mean service time.
        let mean_service_min = machine
            .cost_model()
            .job_time_uniform_s(170, 20, 6000)
            / 60.0;
        options.push(Option_ {
            machine: machine.name().to_string(),
            qubits: machine.num_qubits(),
            public: machine.access().is_public(),
            esp,
            cx_total: compiled.output_metrics.cx_total,
            pending,
            est_queue_min: pending * mean_service_min,
        });
    }

    // Rank by fidelity; the queue column shows what that fidelity costs.
    options.sort_by(|a, b| b.esp.partial_cmp(&a.esp).expect("esp finite"));
    println!(
        "{:<12} {:>3}  {:<10} {:>8} {:>8} {:>10} {:>12}",
        "machine", "q", "access", "ESP", "CX", "pending", "est. queue"
    );
    for o in &options {
        println!(
            "{:<12} {:>3}  {:<10} {:>7.1}% {:>8} {:>10.1} {:>9.0} min",
            o.machine,
            o.qubits,
            if o.public { "public" } else { "privileged" },
            100.0 * o.esp,
            o.cx_total,
            o.pending,
            o.est_queue_min
        );
    }

    let best_fidelity = &options[0];
    let fastest = options
        .iter()
        .min_by(|a, b| {
            a.est_queue_min
                .partial_cmp(&b.est_queue_min)
                .expect("queue estimates finite")
        })
        .expect("at least one machine fits");
    println!(
        "\nbest fidelity: {} ({:.1}% ESP, ~{:.0} min queue)",
        best_fidelity.machine,
        100.0 * best_fidelity.esp,
        best_fidelity.est_queue_min
    );
    println!(
        "fastest start: {} ({:.1}% ESP, ~{:.0} min queue)",
        fastest.machine,
        100.0 * fastest.esp,
        fastest.est_queue_min
    );
    Ok(())
}
