//! Criterion benchmarks of the runtime-prediction model fit (Fig 15).

use criterion::{criterion_group, criterion_main, Criterion};
use qcs_stats::ProductModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn training_set(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(1);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            vec![
                rng.gen_range(1.0..900.0),
                rng.gen_range(100.0..8192.0),
                rng.gen_range(5.0..60.0),
            ]
        })
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| (3.0 + 0.3 * r[0]) * (1.0 + r[1] * 1e-4) * (1.0 + r[2] * 1e-3))
        .collect();
    (rows, y)
}

fn bench_fit(c: &mut Criterion) {
    let (rows, y) = training_set(2000);
    c.bench_function("product_model_fit_2k", |b| {
        b.iter(|| ProductModel::fit(&rows, &y, 200));
    });
}

criterion_group!(benches, bench_fit);
criterion_main!(benches);
