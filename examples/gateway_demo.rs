//! Live-gateway demo: start `qcs-gateway` on a loopback port, replay the
//! opening slice of a generated workload trace through the TCP client at
//! high time compression, then drain and print a queue-time summary.
//!
//! ```sh
//! cargo run --release --example gateway_demo
//! ```

use qcs::cloud::{CloudConfig, JobOutcome};
use qcs::gateway::{Gateway, GatewayClient, GatewayConfig, LoadGenerator};
use qcs::machine::Fleet;
use qcs::stats::median;
use qcs::workload::{generate, WorkloadConfig};

/// Simulated seconds per wall second: a 4-hour trace replays in ~1 s.
const COMPRESSION: f64 = 14_400.0;
/// Trace slice to replay, seconds.
const HORIZON_S: f64 = 4.0 * 3600.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = Fleet::ibm_like();
    let workload = generate(&fleet, &WorkloadConfig::smoke());
    let mut jobs = workload.jobs;
    jobs.retain(|j| j.submit_s < HORIZON_S);
    println!(
        "replaying {} jobs from the first {:.0} h of the trace at {:.0}x compression...",
        jobs.len(),
        HORIZON_S / 3600.0,
        COMPRESSION
    );

    let gateway = Gateway::start(
        fleet,
        CloudConfig {
            audit: true,
            ..CloudConfig::default()
        },
        GatewayConfig {
            time_compression: COMPRESSION,
            ..GatewayConfig::default()
        },
    )?;
    println!("gateway listening on {}", gateway.addr());

    let report = LoadGenerator::new(COMPRESSION).replay(gateway.addr(), &jobs)?;
    println!(
        "replay done: {} accepted, {} busy, {} rejected",
        report.accepted_ids.len(),
        report.busy,
        report.rejected
    );

    // Poke the live state once more before draining.
    let mut client = GatewayClient::connect(gateway.addr())?;
    for (key, value) in client.metrics()? {
        println!("  {key} = {value}");
    }
    client.quit()?;

    let (result, metrics) = gateway.shutdown_and_drain();
    if let Some(audit) = &result.audit {
        audit.assert_clean();
        println!("invariant audit: clean");
    }

    let mut queue_min: Vec<f64> = result
        .records
        .iter()
        .filter(|r| r.outcome != JobOutcome::Cancelled)
        .map(|r| r.queue_time_s() / 60.0)
        .collect();
    queue_min.sort_by(f64::total_cmp);
    let mean = queue_min.iter().sum::<f64>() / queue_min.len().max(1) as f64;
    println!(
        "\nqueue-time summary over {} executed jobs (simulated minutes):",
        queue_min.len()
    );
    println!("  median {:.2} min   mean {:.2} min", median(&queue_min), mean);
    if let (Some(first), Some(last)) = (queue_min.first(), queue_min.last()) {
        println!("  min    {first:.2} min   max  {last:.2} min");
    }
    let (completed, errored, cancelled) = result.outcome_fractions();
    println!(
        "outcomes: {:.1}% completed, {:.1}% errored, {:.1}% cancelled ({} jobs total)",
        completed * 100.0,
        errored * 100.0,
        cancelled * 100.0,
        result.total_jobs
    );
    println!(
        "gateway counters: {} submitted, {} accepted, {} backpressure, {} rate-limited",
        metrics.submitted, metrics.accepted, metrics.rejected_backpressure, metrics.rejected_rate
    );
    Ok(())
}
