//! Undirected coupling graphs and basic graph algorithms.

use std::collections::VecDeque;
use std::fmt;

/// An undirected graph over qubits `0..n`, describing which pairs support a
/// native two-qubit gate.
///
/// Stored as an adjacency list plus a deduplicated edge list (each edge kept
/// once with `a < b`).
///
/// # Examples
///
/// ```
/// use qcs_topology::CouplingGraph;
///
/// let line = CouplingGraph::from_edges(3, &[(0, 1), (1, 2)]);
/// assert_eq!(line.num_edges(), 2);
/// assert_eq!(line.distance(0, 2), Some(2));
/// assert!(line.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingGraph {
    num_qubits: usize,
    adjacency: Vec<Vec<usize>>,
    edges: Vec<(usize, usize)>,
}

impl CouplingGraph {
    /// Build a graph from an edge list. Duplicate and reversed edges are
    /// collapsed; self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= num_qubits`.
    #[must_use]
    pub fn from_edges(num_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency = vec![Vec::new(); num_qubits];
        let mut dedup = std::collections::BTreeSet::new();
        for &(a, b) in edges {
            assert!(
                a < num_qubits && b < num_qubits,
                "edge ({a},{b}) out of range for {num_qubits} qubits"
            );
            if a == b {
                continue;
            }
            dedup.insert((a.min(b), a.max(b)));
        }
        let edges: Vec<(usize, usize)> = dedup.into_iter().collect();
        for &(a, b) in &edges {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        CouplingGraph {
            num_qubits,
            adjacency,
            edges,
        }
    }

    /// A graph with no edges (e.g. a 1-qubit device).
    #[must_use]
    pub fn edgeless(num_qubits: usize) -> Self {
        CouplingGraph::from_edges(num_qubits, &[])
    }

    /// Number of qubits (nodes).
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The deduplicated edge list, each as `(low, high)`.
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbors of `q` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// Degree of node `q`.
    #[must_use]
    pub fn degree(&self, q: usize) -> usize {
        self.adjacency[q].len()
    }

    /// Whether `a` and `b` are directly coupled.
    #[must_use]
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        a < self.num_qubits && self.adjacency[a].binary_search(&b).is_ok()
    }

    /// BFS distances from `source` to every node (`None` if unreachable).
    #[must_use]
    pub fn distances_from(&self, source: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.num_qubits];
        let mut queue = VecDeque::new();
        dist[source] = Some(0);
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("visited nodes have a distance");
            for &v in &self.adjacency[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Shortest-path distance between `a` and `b` in hops.
    #[must_use]
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        self.distances_from(a)[b]
    }

    /// One shortest path from `a` to `b` (inclusive of both endpoints), or
    /// `None` if disconnected.
    #[must_use]
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a == b {
            return Some(vec![a]);
        }
        let mut parent = vec![usize::MAX; self.num_qubits];
        let mut seen = vec![false; self.num_qubits];
        let mut queue = VecDeque::new();
        seen[a] = true;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = u;
                    if v == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while cur != a {
                            cur = parent[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// All-pairs distance matrix; `usize::MAX` marks unreachable pairs.
    ///
    /// O(V·E); cheap at device sizes (≤ a few thousand qubits).
    #[must_use]
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        (0..self.num_qubits)
            .map(|s| {
                self.distances_from(s)
                    .into_iter()
                    .map(|d| d.unwrap_or(usize::MAX))
                    .collect()
            })
            .collect()
    }

    /// Whether the graph is connected (vacuously true for 0/1 nodes).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.num_qubits <= 1 {
            return true;
        }
        self.distances_from(0).iter().all(Option::is_some)
    }

    /// Graph diameter (longest shortest path); `None` if disconnected or
    /// empty.
    #[must_use]
    pub fn diameter(&self) -> Option<usize> {
        if self.num_qubits == 0 || !self.is_connected() {
            return None;
        }
        let mut best = 0;
        for s in 0..self.num_qubits {
            for d in self.distances_from(s).into_iter().flatten() {
                best = best.max(d);
            }
        }
        Some(best)
    }

    /// Average node degree.
    #[must_use]
    pub fn average_degree(&self) -> f64 {
        if self.num_qubits == 0 {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / self.num_qubits as f64
    }

    /// The subgraph induced by `nodes`: node `i` of the result corresponds
    /// to `nodes[i]`, and an edge exists where both endpoints are in
    /// `nodes` and coupled here.
    ///
    /// # Panics
    ///
    /// Panics if a node repeats or is out of range.
    #[must_use]
    pub fn induced_subgraph(&self, nodes: &[usize]) -> CouplingGraph {
        let mut index_of = std::collections::HashMap::with_capacity(nodes.len());
        for (new, &old) in nodes.iter().enumerate() {
            assert!(old < self.num_qubits, "node {old} out of range");
            assert!(
                index_of.insert(old, new).is_none(),
                "node {old} repeated in subgraph selection"
            );
        }
        let edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter_map(|&(a, b)| {
                let na = index_of.get(&a)?;
                let nb = index_of.get(&b)?;
                Some((*na, *nb))
            })
            .collect();
        CouplingGraph::from_edges(nodes.len(), &edges)
    }

    /// Count edges crossing a partition described by `side[q] == true/false`.
    ///
    /// # Panics
    ///
    /// Panics if `side.len() != num_qubits`.
    #[must_use]
    pub fn cut_size(&self, side: &[bool]) -> usize {
        assert_eq!(side.len(), self.num_qubits, "partition size mismatch");
        self.edges
            .iter()
            .filter(|&&(a, b)| side[a] != side[b])
            .count()
    }
}

impl fmt::Display for CouplingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coupling graph: {} qubits, {} edges",
            self.num_qubits,
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CouplingGraph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        CouplingGraph::from_edges(n, &edges)
    }

    #[test]
    fn dedup_and_selfloops() {
        let g = CouplingGraph::from_edges(3, &[(0, 1), (1, 0), (1, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = CouplingGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn distances_on_path() {
        let g = path(5);
        assert_eq!(g.distance(0, 4), Some(4));
        assert_eq!(g.distance(2, 2), Some(0));
        assert_eq!(g.diameter(), Some(4));
    }

    #[test]
    fn shortest_path_endpoints() {
        let g = path(5);
        let p = g.shortest_path(1, 4).unwrap();
        assert_eq!(p, vec![1, 2, 3, 4]);
        assert_eq!(g.shortest_path(3, 3).unwrap(), vec![3]);
    }

    #[test]
    fn disconnected_detected() {
        let g = CouplingGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert_eq!(g.distance(0, 3), None);
        assert_eq!(g.diameter(), None);
        assert_eq!(g.shortest_path(0, 2), None);
    }

    #[test]
    fn edgeless_single_qubit() {
        let g = CouplingGraph::edgeless(1);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(0));
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn coupled_check() {
        let g = path(4);
        assert!(g.are_coupled(1, 2));
        assert!(!g.are_coupled(0, 2));
    }

    #[test]
    fn cut_size_counts_crossing() {
        let g = path(4);
        let side = vec![true, true, false, false];
        assert_eq!(g.cut_size(&side), 1);
        let side = vec![true, false, true, false];
        assert_eq!(g.cut_size(&side), 3);
    }

    #[test]
    fn induced_subgraph_maps_edges() {
        let g = path(5);
        // Select 1,2,3: path of 3.
        let sub = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.num_qubits(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.are_coupled(0, 1) && sub.are_coupled(1, 2));
        // Select disconnected nodes 0 and 4.
        let sub = g.induced_subgraph(&[0, 4]);
        assert_eq!(sub.num_edges(), 0);
        // Order-sensitive mapping.
        let sub = g.induced_subgraph(&[3, 1, 2]);
        assert!(sub.are_coupled(0, 2)); // 3-2
        assert!(sub.are_coupled(1, 2)); // 1-2
        assert!(!sub.are_coupled(0, 1));
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn induced_subgraph_rejects_duplicates() {
        let _ = path(3).induced_subgraph(&[0, 0]);
    }

    #[test]
    fn distance_matrix_symmetric() {
        let g = path(6);
        let m = g.distance_matrix();
        for (i, row) in m.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, m[j][i]);
            }
        }
        assert_eq!(m[0][5], 5);
    }
}
