//! Criterion benchmarks of the gate-fusion statevector kernels and the
//! trajectory buffer pool — the hot path behind the noisy simulator.
//!
//! `fusion_qft10` is the headline fused-vs-unfused comparison the
//! `bench-smoke` CI gate asserts on; `fusion_pool` isolates the
//! allocation cost the per-worker buffer pool removes.

use criterion::{criterion_group, criterion_main, Criterion};
use qcs_circuit::library;
use qcs_exec::BufferPool;
use qcs_sim::{Complex, CompiledCircuit, SimdPolicy, Statevector, SvExec};
use qcs_topology::families;
use qcs_transpiler::{transpile, Target, TranspileOptions};

fn bench_fused_vs_unfused(c: &mut Criterion) {
    // The simulator's real input is *transpiled* circuits: basis
    // translation to {rz, sx, x, cx} turns every 1q gate into a same-wire
    // rz/sx chain, exactly the runs the fusion pass collapses into one
    // statevector sweep. The unfused baseline dispatches per instruction.
    let target = Target::noiseless("bench", families::complete(10));
    let circuit = transpile(&library::qft(10), &target, TranspileOptions::full())
        .expect("qft fits the bench target")
        .circuit;
    let compiled = CompiledCircuit::compile(&circuit);
    let mut group = c.benchmark_group("fusion_qft10");
    group.bench_function("unfused", |b| {
        b.iter(|| Statevector::from_circuit(&circuit).unwrap());
    });
    group.bench_function("fused", |b| {
        b.iter(|| compiled.execute().unwrap());
    });
    // The same fused kernels through the explicit f64x4-chunked path on
    // one thread: isolates the SIMD win from block parallelism. The CI
    // bench-smoke gate asserts this point is never slower than the
    // scalar `fused` point (amplitudes are bit-identical).
    let wide = SvExec::auto().with_simd(SimdPolicy::Wide).with_threads(1);
    group.bench_function("wide", |b| {
        b.iter(|| compiled.execute_with(&wide).unwrap());
    });
    group.finish();
}

fn bench_pooled_vs_fresh(c: &mut Criterion) {
    // The per-trajectory statevector allocation, amortized away by the
    // worker-local BufferPool: `fresh` allocates 2^12 amplitudes per run,
    // `pooled` recycles one buffer across runs.
    let circuit = library::qft(12);
    let compiled = CompiledCircuit::compile(&circuit);
    let mut group = c.benchmark_group("fusion_pool");
    group.bench_function("fresh", |b| {
        b.iter(|| compiled.execute().unwrap());
    });
    group.bench_function("pooled", |b| {
        let mut pool: BufferPool<Complex> = BufferPool::new();
        b.iter(|| {
            let buf = pool.acquire(0, Complex::ZERO);
            let state = compiled.execute_in(buf).unwrap();
            let amps = state.into_amps();
            let norm = amps[0];
            pool.release(amps);
            norm
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fused_vs_unfused, bench_pooled_vs_fresh);
criterion_main!(benches);
