//! Queue-wait prediction (paper Recommendation ⑤: "research on predicting
//! queuing times with quantitative confidence levels ... are worth
//! pursuing").
//!
//! The estimator uses the observation chain the paper itself builds:
//! execution times are highly predictable (§VI-C), so the work ahead of a
//! job — pending jobs x expected service — is predictable too, and under
//! work-conserving scheduling the wait tracks the backlog.

use qcs_cloud::{JobOutcome, JobRecord};
use qcs_stats::{pearson, quantile};

/// A backlog-based queue-wait estimator with empirical confidence bands.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueWaitModel {
    /// Learned mean service time per machine, seconds.
    mean_service_s: Vec<f64>,
    /// Multiplicative confidence band `(p10, p90)` of `actual/predicted`,
    /// learned on the training set.
    band: (f64, f64),
}

impl QueueWaitModel {
    /// Fit from historical records: per-machine mean service time from
    /// completed jobs, plus the empirical error band of the backlog
    /// estimate. Machines with no data fall back to the fleet mean.
    ///
    /// # Panics
    ///
    /// Panics if no completed jobs are provided.
    #[must_use]
    pub fn fit(records: &[&JobRecord], num_machines: usize) -> Self {
        let completed: Vec<&&JobRecord> = records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Completed)
            .collect();
        assert!(!completed.is_empty(), "no completed jobs to fit on");

        let mut sums = vec![0.0f64; num_machines];
        let mut counts = vec![0usize; num_machines];
        for r in &completed {
            sums[r.machine] += r.exec_time_s();
            counts[r.machine] += 1;
        }
        let fleet_mean = sums.iter().sum::<f64>() / completed.len() as f64;
        let mean_service_s: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { fleet_mean })
            .collect();

        // Empirical band of actual/predicted on jobs that actually waited.
        let mut ratios: Vec<f64> = completed
            .iter()
            .filter(|r| r.pending_at_submit > 0 && r.queue_time_s() > 0.0)
            .map(|r| {
                let predicted =
                    r.pending_at_submit as f64 * mean_service_s[r.machine];
                r.queue_time_s() / predicted.max(1e-9)
            })
            .collect();
        ratios.sort_by(f64::total_cmp);
        let band = if ratios.is_empty() {
            (1.0, 1.0)
        } else {
            (
                quantile(&ratios, 0.10).unwrap_or(1.0).max(1e-3),
                quantile(&ratios, 0.90).unwrap_or(1.0).max(1e-3),
            )
        };
        QueueWaitModel {
            mean_service_s,
            band,
        }
    }

    /// Point estimate of the wait for a job submitted to `machine` with
    /// `pending` jobs ahead of it, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    #[must_use]
    pub fn predict_wait_s(&self, machine: usize, pending: usize) -> f64 {
        pending as f64 * self.mean_service_s[machine]
    }

    /// The 10–90 % confidence interval around a point estimate, seconds
    /// (the paper's "quantitative confidence levels").
    #[must_use]
    pub fn confidence_interval_s(&self, machine: usize, pending: usize) -> (f64, f64) {
        let point = self.predict_wait_s(machine, pending);
        (point * self.band.0, point * self.band.1)
    }

    /// Learned mean service time of a machine, seconds.
    #[must_use]
    pub fn mean_service_s(&self, machine: usize) -> f64 {
        self.mean_service_s[machine]
    }
}

/// Evaluation of a [`QueueWaitModel`] on held-out records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuePredictionReport {
    /// Jobs evaluated (waited, completed).
    pub jobs: usize,
    /// Pearson correlation of predicted vs actual waits.
    pub correlation: f64,
    /// Median absolute error, minutes.
    pub median_abs_error_min: f64,
    /// Fraction of actual waits inside the model's 10–90 % band.
    pub band_coverage: f64,
}

/// Evaluate a fitted model on records (typically a held-out split).
///
/// Only completed jobs that actually waited behind someone are scored —
/// zero-wait jobs are trivially predictable and would inflate the metrics.
#[must_use]
pub fn evaluate_queue_prediction(
    model: &QueueWaitModel,
    records: &[&JobRecord],
) -> QueuePredictionReport {
    let scored: Vec<&&JobRecord> = records
        .iter()
        .filter(|r| {
            r.outcome == JobOutcome::Completed
                && r.pending_at_submit > 0
                && r.queue_time_s() > 0.0
        })
        .collect();
    let predicted: Vec<f64> = scored
        .iter()
        .map(|r| model.predict_wait_s(r.machine, r.pending_at_submit))
        .collect();
    let actual: Vec<f64> = scored.iter().map(|r| r.queue_time_s()).collect();
    let mut abs_err: Vec<f64> = predicted
        .iter()
        .zip(&actual)
        .map(|(p, a)| (p - a).abs() / 60.0)
        .collect();
    abs_err.sort_by(f64::total_cmp);
    let in_band = scored
        .iter()
        .zip(&actual)
        .filter(|(r, &a)| {
            let (lo, hi) = model.confidence_interval_s(r.machine, r.pending_at_submit);
            (lo..=hi).contains(&a)
        })
        .count();
    QueuePredictionReport {
        jobs: scored.len(),
        correlation: pearson(&predicted, &actual),
        median_abs_error_min: quantile(&abs_err, 0.5).unwrap_or(f64::NAN),
        band_coverage: if scored.is_empty() {
            0.0
        } else {
            in_band as f64 / scored.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, machine: usize, pending: usize, exec_s: f64, wait_s: f64) -> JobRecord {
        JobRecord {
            id,
            provider: 0,
            machine,
            circuits: 10,
            shots: 1024,
            mean_width: 3.0,
            mean_depth: 15.0,
            is_study: true,
            submit_s: 0.0,
            start_s: wait_s,
            end_s: wait_s + exec_s,
            outcome: JobOutcome::Completed,
            pending_at_submit: pending,
            crossed_calibration: false,
        }
    }

    /// Records where wait = pending * 100s exactly, service = 100s.
    fn ideal_records(n: usize) -> Vec<JobRecord> {
        (0..n)
            .map(|i| record(i as u64, i % 2, i % 7 + 1, 100.0, (i % 7 + 1) as f64 * 100.0))
            .collect()
    }

    #[test]
    fn fits_mean_service() {
        let records = ideal_records(50);
        let refs: Vec<&JobRecord> = records.iter().collect();
        let model = QueueWaitModel::fit(&refs, 3);
        assert!((model.mean_service_s(0) - 100.0).abs() < 1e-9);
        assert!((model.mean_service_s(1) - 100.0).abs() < 1e-9);
        // Machine 2 has no data: falls back to fleet mean.
        assert!((model.mean_service_s(2) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_backlog_predicts_perfectly() {
        let records = ideal_records(60);
        let refs: Vec<&JobRecord> = records.iter().collect();
        let model = QueueWaitModel::fit(&refs, 2);
        let report = evaluate_queue_prediction(&model, &refs);
        assert!(report.jobs > 0);
        assert!(report.correlation > 0.999, "corr {}", report.correlation);
        assert!(report.median_abs_error_min < 1e-6);
        assert!(report.band_coverage > 0.99);
    }

    #[test]
    fn confidence_band_orders() {
        let records = ideal_records(30);
        let refs: Vec<&JobRecord> = records.iter().collect();
        let model = QueueWaitModel::fit(&refs, 2);
        let (lo, hi) = model.confidence_interval_s(0, 5);
        assert!(lo <= hi);
        assert!(lo > 0.0);
        assert_eq!(model.predict_wait_s(0, 0), 0.0);
    }

    #[test]
    fn noisy_waits_reduce_coverage_gracefully() {
        // Waits 2x the backlog estimate: correlation stays perfect,
        // coverage depends on the learned band (which adapts).
        let records: Vec<JobRecord> = (0..40)
            .map(|i| {
                record(
                    i as u64,
                    0,
                    (i % 5 + 1) as usize,
                    100.0,
                    (i % 5 + 1) as f64 * 200.0,
                )
            })
            .collect();
        let refs: Vec<&JobRecord> = records.iter().collect();
        let model = QueueWaitModel::fit(&refs, 1);
        let report = evaluate_queue_prediction(&model, &refs);
        assert!(report.correlation > 0.999);
        // The band was learned around the 2x ratio, so coverage is high.
        assert!(report.band_coverage > 0.9, "coverage {}", report.band_coverage);
    }

    #[test]
    #[should_panic(expected = "no completed jobs")]
    fn empty_fit_panics() {
        let _ = QueueWaitModel::fit(&[], 1);
    }
}
