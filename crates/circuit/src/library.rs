//! A library of benchmark circuits.
//!
//! These are the workloads the paper's experiments run: the Quantum Fourier
//! Transform used in Figs 5 and 7, plus the standard NISQ benchmark suite
//! (GHZ, Bernstein–Vazirani, quantum volume, ansatz circuits, adders) that
//! populates the synthetic workload mix.

use std::f64::consts::PI;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Circuit, Gate};

/// The n-qubit Quantum Fourier Transform (with final qubit-reversal swaps),
/// measured at the end.
///
/// Gate count: `n` Hadamards, `n(n-1)/2` controlled-phase rotations and
/// `floor(n/2)` swaps — quadratic in `n`, which is what makes QFT a good
/// compile-time stressor (Fig 5).
///
/// # Examples
///
/// ```
/// use qcs_circuit::library::qft;
/// let c = qft(4);
/// assert_eq!(c.num_qubits(), 4);
/// assert_eq!(c.cx_count(), 4 * 3 / 2 + 2); // cp gates + swaps
/// ```
#[must_use]
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n).named(format!("qft_{n}"));
    for i in 0..n {
        c.h(i);
        for j in (i + 1)..n {
            let angle = PI / f64::powi(2.0, (j - i) as i32);
            c.cp(angle, j, i);
        }
    }
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    c.measure_all();
    c
}

/// The n-qubit GHZ state preparation circuit: `H` then a CX chain.
#[must_use]
pub fn ghz(n: usize) -> Circuit {
    assert!(n >= 1, "ghz needs at least one qubit");
    let mut c = Circuit::new(n).named(format!("ghz_{n}"));
    c.h(0);
    for i in 1..n {
        c.cx(i - 1, i);
    }
    c.measure_all();
    c
}

/// Bernstein–Vazirani circuit for an `n`-bit hidden string `secret`
/// (only the low `n` bits of `secret` are used). Uses `n + 1` qubits.
#[must_use]
pub fn bernstein_vazirani(n: usize, secret: u64) -> Circuit {
    let mut c = Circuit::with_clbits(n + 1, n).named(format!("bv_{n}"));
    let anc = n;
    c.x(anc);
    for q in 0..=n {
        c.h(q);
    }
    for q in 0..n {
        if (secret >> q) & 1 == 1 {
            c.cx(q, anc);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        c.measure(q, q);
    }
    c
}

/// An IBM-style quantum-volume model circuit: `depth` layers, each a random
/// permutation of qubits followed by random two-qubit blocks (decomposed
/// here as CX + random single-qubit rotations).
#[must_use]
pub fn quantum_volume(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n).named(format!("qv_{n}_{depth}"));
    for _ in 0..depth {
        let mut perm: Vec<usize> = (0..n).collect();
        // Fisher-Yates shuffle.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for pair in perm.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            for &q in &[a, b] {
                c.rz(rng.gen_range(0.0..2.0 * PI), q);
                c.ry(rng.gen_range(0.0..2.0 * PI), q);
            }
            c.cx(a, b);
            for &q in &[a, b] {
                c.ry(rng.gen_range(0.0..2.0 * PI), q);
                c.rz(rng.gen_range(0.0..2.0 * PI), q);
            }
        }
    }
    c.measure_all();
    c
}

/// A random circuit with the given number of qubits and target two-qubit
/// gate count; single-qubit gates are interleaved at roughly 2:1.
///
/// Used by the workload generator for "anonymous user circuits".
#[must_use]
pub fn random_circuit(n: usize, two_qubit_gates: usize, seed: u64) -> Circuit {
    assert!(n >= 1, "random circuit needs at least one qubit");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n).named(format!("rand_{n}_{two_qubit_gates}"));
    let one_q = [Gate::H, Gate::X, Gate::S, Gate::T, Gate::Sx];
    for _ in 0..two_qubit_gates {
        for _ in 0..2 {
            let g = one_q[rng.gen_range(0..one_q.len())];
            let q = rng.gen_range(0..n);
            c.apply(g, &[q]);
        }
        if n >= 2 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            c.cx(a, b);
        }
    }
    c.measure_all();
    c
}

/// A hardware-efficient variational ansatz: `layers` of per-qubit Ry/Rz
/// rotations followed by a linear CX entangling ladder. The rotation
/// angles are seeded so circuits are reproducible.
#[must_use]
pub fn hardware_efficient_ansatz(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n).named(format!("hea_{n}_{layers}"));
    for _ in 0..layers {
        for q in 0..n {
            c.ry(rng.gen_range(0.0..2.0 * PI), q);
            c.rz(rng.gen_range(0.0..2.0 * PI), q);
        }
        for q in 0..n.saturating_sub(1) {
            c.cx(q, q + 1);
        }
    }
    c.measure_all();
    c
}

/// A cuccaro-style ripple-carry adder skeleton over two `n`-bit registers
/// plus carry-in/out (2n + 2 qubits). The CX/Toffoli structure is modeled
/// with the Toffolis decomposed into the standard 6-CX network.
#[must_use]
pub fn ripple_carry_adder(n: usize) -> Circuit {
    assert!(n >= 1, "adder needs at least 1-bit registers");
    let width = 2 * n + 2;
    let mut c = Circuit::new(width).named(format!("adder_{n}"));
    let a = |i: usize| 1 + 2 * i; // interleave registers for locality
    let b = |i: usize| 2 + 2 * i;
    let cin = 0;
    let cout = width - 1;
    // MAJ / UMA cascade with decomposed Toffolis.
    let toffoli = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.h(z);
        c.cx(y, z);
        c.apply(Gate::Tdg, &[z]);
        c.cx(x, z);
        c.t(z);
        c.cx(y, z);
        c.apply(Gate::Tdg, &[z]);
        c.cx(x, z);
        c.t(y);
        c.t(z);
        c.h(z);
        c.cx(x, y);
        c.t(x);
        c.apply(Gate::Tdg, &[y]);
        c.cx(x, y);
    };
    for i in 0..n {
        let prev = if i == 0 { cin } else { a(i - 1) };
        c.cx(a(i), b(i));
        c.cx(a(i), prev);
        toffoli(&mut c, prev, b(i), a(i));
    }
    c.cx(a(n - 1), cout);
    for i in (0..n).rev() {
        let prev = if i == 0 { cin } else { a(i - 1) };
        toffoli(&mut c, prev, b(i), a(i));
        c.cx(a(i), prev);
        c.cx(prev, b(i));
    }
    c.measure_all();
    c
}

/// The W-state preparation circuit on `n` qubits (cascade of controlled
/// rotations and CX gates).
#[must_use]
pub fn w_state(n: usize) -> Circuit {
    assert!(n >= 1, "w state needs at least one qubit");
    let mut c = Circuit::new(n).named(format!("w_{n}"));
    c.x(0);
    for i in 0..n - 1 {
        // Distribute amplitude from qubit i to i+1.
        let remaining = (n - i) as f64;
        let theta = 2.0 * (1.0 / remaining.sqrt()).acos();
        c.ry(-theta / 2.0, i + 1);
        c.cz(i, i + 1);
        c.ry(theta / 2.0, i + 1);
        c.cx(i + 1, i);
    }
    c.measure_all();
    c
}

/// Grover search on `n` qubits for a single marked basis state `marked`
/// (low `n` bits used), with the standard optimal iteration count
/// `floor(pi/4 * sqrt(2^n))`. The ideal output concentrates on `marked`,
/// making this a natural deterministic-outcome fidelity benchmark.
///
/// The multi-controlled phases are decomposed exactly but with
/// exponential gate count in `n`, so the width is capped at 10.
///
/// # Panics
///
/// Panics if `n` is outside `1..=10`.
#[must_use]
pub fn grover(n: usize, marked: u64) -> Circuit {
    assert!((1..=10).contains(&n), "grover supports 1..=10 qubits");
    let mut c = Circuit::new(n).named(format!("grover_{n}"));
    let iterations = ((std::f64::consts::FRAC_PI_4) * f64::powi(2.0, n as i32).sqrt())
        .floor()
        .max(1.0) as usize;
    for q in 0..n {
        c.h(q);
    }
    // Multi-controlled Z on all qubits, decomposed recursively via
    // controlled-phase halving (exact, CX-free: cp ladders).
    let mcz = |c: &mut Circuit| {
        // C^{n-1}Z implemented as cascaded controlled-phase gates:
        // exact for small n using the phase-halving construction.
        apply_mcz(c, &(0..n).collect::<Vec<_>>());
    };
    for _ in 0..iterations {
        // Oracle: flip phase of |marked> = X-conjugated MCZ.
        for q in 0..n {
            if (marked >> q) & 1 == 0 {
                c.x(q);
            }
        }
        mcz(&mut c);
        for q in 0..n {
            if (marked >> q) & 1 == 0 {
                c.x(q);
            }
        }
        // Diffusion: H X ... MCZ ... X H.
        for q in 0..n {
            c.h(q);
            c.x(q);
        }
        mcz(&mut c);
        for q in 0..n {
            c.x(q);
            c.h(q);
        }
    }
    c.measure_all();
    c
}

/// Apply a multi-controlled Z over `qubits` via the textbook recursive
/// construction (exact; exponential two-qubit gate count in the number of
/// controls — fine at benchmark sizes).
fn apply_mcz(c: &mut Circuit, qubits: &[usize]) {
    match qubits {
        [] => {}
        [q] => {
            c.z(*q);
        }
        [a, b] => {
            c.cz(*a, *b);
        }
        [controls @ .., target] => {
            apply_mcp(c, controls, *target, std::f64::consts::PI);
        }
    }
}

/// Controlled^k phase: apply phase `theta` iff all `controls` and the
/// target are 1, via the standard halving recursion
/// `C^kP(t) = CP(t/2; c_k, tgt) MCX CP(-t/2; c_k, tgt) MCX C^{k-1}P(t/2)`.
fn apply_mcp(c: &mut Circuit, controls: &[usize], target: usize, theta: f64) {
    match controls {
        [] => {
            // Uncontrolled phase gate P(theta) (phase-exact, unlike rz).
            c.apply(Gate::U(0.0, 0.0, theta), &[target]);
        }
        [single] => {
            c.cp(theta, *single, target);
        }
        [rest @ .., last] => {
            c.cp(theta / 2.0, *last, target);
            apply_mcx(c, rest, *last);
            c.cp(-theta / 2.0, *last, target);
            apply_mcx(c, rest, *last);
            apply_mcp(c, rest, target, theta / 2.0);
        }
    }
}

/// Multi-controlled X: `MCX = H(tgt) . MCP(pi) . H(tgt)`.
fn apply_mcx(c: &mut Circuit, controls: &[usize], target: usize) {
    match controls {
        [] => {
            c.x(target);
        }
        [single] => {
            c.cx(*single, target);
        }
        _ => {
            c.h(target);
            apply_mcp(c, controls, target, std::f64::consts::PI);
            c.h(target);
        }
    }
}

/// Quantum phase estimation of the phase gate `P(2*pi*phase)` using
/// `precision` counting qubits (total `precision + 1` qubits). With
/// `phase = k / 2^precision` the ideal outcome is exactly `k` on the
/// counting register, giving another deterministic benchmark.
///
/// # Panics
///
/// Panics if `precision == 0`.
#[must_use]
pub fn phase_estimation(precision: usize, phase: f64) -> Circuit {
    assert!(precision >= 1, "need at least one counting qubit");
    let n = precision + 1;
    let eigen = precision; // the eigenstate qubit
    let mut c = Circuit::with_clbits(n, precision).named(format!("qpe_{precision}"));
    c.x(eigen); // |1> is the P-gate eigenstate with eigenvalue e^{2*pi*i*phase}
    for q in 0..precision {
        c.h(q);
    }
    for (q, power) in (0..precision).map(|q| (q, 1u64 << q)) {
        let angle = 2.0 * PI * phase * power as f64;
        c.cp(angle, q, eigen);
    }
    // Inverse QFT on the counting register (no swaps; the bit reversal is
    // absorbed into the measurement mapping below).
    for i in (0..precision).rev() {
        c.h(i);
        for j in (0..i).rev() {
            let angle = -PI / f64::powi(2.0, (i - j) as i32);
            c.cp(angle, j, i);
        }
    }
    for q in 0..precision {
        c.measure(q, precision - 1 - q);
    }
    c
}

/// Names of all fixed-shape library families, used by the workload mixer.
pub const FAMILIES: &[&str] = &["qft", "ghz", "bv", "qv", "rand", "hea", "adder", "w"];

/// Construct a library circuit by family name for a given width.
///
/// Families needing extra parameters use deterministic defaults derived
/// from `seed`. Returns `None` for an unknown family name.
#[must_use]
pub fn by_family(family: &str, n: usize, seed: u64) -> Option<Circuit> {
    let n = n.max(1);
    Some(match family {
        "qft" => qft(n),
        "ghz" => ghz(n),
        "bv" => bernstein_vazirani(n.max(2) - 1, seed),
        "qv" => quantum_volume(n, n.min(8), seed),
        "rand" => random_circuit(n, 2 * n + 1, seed),
        "hea" => hardware_efficient_ansatz(n, 3, seed),
        "adder" => ripple_carry_adder((n.saturating_sub(2) / 2).max(1)),
        "w" => w_state(n),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitMetrics;

    #[test]
    fn qft_gate_counts() {
        let n = 6;
        let c = qft(n);
        let m = CircuitMetrics::of(&c);
        assert_eq!(m.width, n);
        assert_eq!(m.single_qubit_gates, n); // hadamards
        assert_eq!(m.cx_total, n * (n - 1) / 2 + n / 2);
        assert_eq!(m.measurements, n);
    }

    #[test]
    fn qft_scales_quadratically() {
        let small = qft(8).cx_count();
        let big = qft(16).cx_count();
        // 16q QFT has ~4x the two-qubit gates of 8q QFT.
        assert!(big > 3 * small && big < 5 * small);
    }

    #[test]
    fn ghz_depth_linear() {
        let c = ghz(10);
        assert_eq!(c.cx_count(), 9);
        assert_eq!(c.cx_depth(), 9);
        assert_eq!(c.active_qubits(), 10);
    }

    #[test]
    fn bv_uses_ancilla() {
        let c = bernstein_vazirani(5, 0b10110);
        assert_eq!(c.num_qubits(), 6);
        assert_eq!(c.cx_count(), 3); // popcount of the secret
        assert_eq!(c.measure_count(), 5);
    }

    #[test]
    fn bv_zero_secret_has_no_cx() {
        assert_eq!(bernstein_vazirani(4, 0).cx_count(), 0);
    }

    #[test]
    fn qv_is_reproducible() {
        let a = quantum_volume(6, 6, 42);
        let b = quantum_volume(6, 6, 42);
        assert_eq!(a, b);
        let c = quantum_volume(6, 6, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_circuit_hits_target_cx() {
        let c = random_circuit(5, 20, 7);
        assert_eq!(c.cx_count(), 20);
    }

    #[test]
    fn random_circuit_single_qubit_ok() {
        let c = random_circuit(1, 5, 1);
        assert_eq!(c.cx_count(), 0);
        assert_eq!(c.num_qubits(), 1);
    }

    #[test]
    fn ansatz_layer_structure() {
        let c = hardware_efficient_ansatz(4, 3, 0);
        assert_eq!(c.cx_count(), 3 * 3);
        assert_eq!(c.single_qubit_gate_count(), 3 * 4 * 2);
    }

    #[test]
    fn adder_width() {
        let c = ripple_carry_adder(3);
        assert_eq!(c.num_qubits(), 8);
        assert!(c.cx_count() > 0);
    }

    #[test]
    fn w_state_structure() {
        let c = w_state(4);
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.active_qubits(), 4);
    }

    #[test]
    fn grover_structure() {
        let c = grover(3, 0b101);
        assert_eq!(c.num_qubits(), 3);
        assert!(c.cx_count() > 0);
        assert_eq!(c.measure_count(), 3);
    }

    #[test]
    #[should_panic(expected = "grover supports")]
    fn grover_rejects_oversize() {
        let _ = grover(11, 0);
    }

    #[test]
    fn qpe_structure() {
        let c = phase_estimation(3, 0.25);
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.measure_count(), 3);
        assert!(c.cx_count() > 0);
    }

    #[test]
    fn by_family_covers_all() {
        for fam in FAMILIES {
            let c = by_family(fam, 5, 3).unwrap_or_else(|| panic!("family {fam}"));
            assert!(c.size() > 0, "family {fam} produced empty circuit");
        }
        assert!(by_family("nope", 5, 0).is_none());
    }
}
