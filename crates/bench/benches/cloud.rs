//! Criterion benchmarks of the cloud DES and workload generator (the
//! substrate behind Figs 2-4 and 9-14), plus per-structure micro points
//! for the DES hot-path overhaul: indexed calendar vs binary heap event
//! queues, winner-tree vs linear-scan fair-share selection, and the
//! optimized vs reference engine end to end (`BENCH_cloud.json`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcs::{Study, StudyConfig};
use qcs_cloud::{Calendar, CloudConfig, DesEngine, FairShareQueue, JobSpec, Simulation};
use qcs_machine::Fleet;
use qcs_workload::{generate, WorkloadConfig};

fn small_workload() -> (Fleet, Vec<JobSpec>) {
    let fleet = Fleet::ibm_like();
    let workload = generate(
        &fleet,
        &WorkloadConfig {
            days: 3.0,
            study_jobs: 100,
            ..WorkloadConfig::default()
        },
    );
    (fleet, workload.jobs)
}

fn bench_des(c: &mut Criterion) {
    let (fleet, jobs) = small_workload();
    c.bench_function("des_3day_trace", |b| {
        b.iter(|| {
            Simulation::new(fleet.clone(), CloudConfig::default()).run(jobs.clone())
        });
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    let fleet = Fleet::ibm_like();
    let config = WorkloadConfig {
        days: 3.0,
        study_jobs: 100,
        ..WorkloadConfig::default()
    };
    c.bench_function("workload_gen_3day", |b| b.iter(|| generate(&fleet, &config)));
}

fn bench_fair_share_queue(c: &mut Criterion) {
    // Winner-tree (default) vs the retained linear-scan oracle, same
    // push/charge/pop stream: the per-pop cost is O(log P) vs O(P).
    let spec = |i: u64| JobSpec {
        id: i,
        provider: (i % 40) as u32,
        machine: 0,
        circuits: 10,
        shots: 1024,
        mean_depth: 20.0,
        mean_width: 3.0,
        submit_s: i as f64,
        is_study: false,
        patience_s: f64::INFINITY,
    };
    for (name, scan) in [("fairshare_push_pop_1k", false), ("fairshare_scan_push_pop_1k", true)] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut queue = FairShareQueue::new(40, 86_400.0);
                if scan {
                    queue = queue.with_scan_selection();
                }
                for i in 0..1000u64 {
                    queue.push(spec(i));
                }
                let mut drained = 0usize;
                while let Some(job) = queue.pop(2000.0) {
                    queue.charge(job.provider, 60.0, 2000.0);
                    drained += 1;
                }
                drained
            });
        });
    }
}

fn bench_event_queue(c: &mut Criterion) {
    // The indexed calendar vs a plain binary heap over the same packed
    // (time, seq) keys: interleaved push/pop mimicking the DES pattern
    // (pop the front, schedule a completion a bit in the future).
    let times: Vec<f64> = (0..1024u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9) % 100_000) as f64 * 0.1)
        .collect();
    c.bench_function("event_queue/calendar_1k", |b| {
        b.iter(|| {
            let mut cal: Calendar<u64> = Calendar::new();
            for (i, &t) in times.iter().enumerate() {
                cal.push(t, i as u64, i as u64);
            }
            let mut out = 0u64;
            let mut seq = times.len() as u64;
            while let Some((t, item)) = cal.pop() {
                out = out.wrapping_add(item);
                if seq < 2048 {
                    cal.push(t + 30.0, seq, seq);
                    seq += 1;
                }
            }
            out
        });
    });
    c.bench_function("event_queue/heap_1k", |b| {
        b.iter(|| {
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            for (i, &t) in times.iter().enumerate() {
                heap.push(Reverse((t.to_bits(), i as u64)));
            }
            let mut out = 0u64;
            let mut seq = times.len() as u64;
            while let Some(Reverse((bits, item))) = heap.pop() {
                out = out.wrapping_add(item);
                if seq < 2048 {
                    heap.push(Reverse(((f64::from_bits(bits) + 30.0).to_bits(), seq)));
                    seq += 1;
                }
            }
            out
        });
    });
}

fn bench_des_engines(c: &mut Criterion) {
    // End-to-end DES on the same trace, optimized vs reference engine —
    // the per-optimization ablation pair `ci.sh` compares.
    let (fleet, jobs) = small_workload();
    for (name, engine) in [
        ("des_engine/optimized", DesEngine::Optimized),
        ("des_engine/reference", DesEngine::Reference),
    ] {
        let config = CloudConfig {
            engine,
            ..CloudConfig::default()
        };
        c.bench_function(name, |b| {
            b.iter(|| Simulation::new(fleet.clone(), config).run(jobs.clone()));
        });
    }
}

fn bench_study_analysis(c: &mut Criterion) {
    // Per-machine analysis fan-out (violins + pending-job scans) at 1 vs
    // 4 worker threads; results are identical, only wall-clock differs.
    let mut group = c.benchmark_group("study_analysis_smoke");
    for threads in [1usize, 4] {
        let study = Study::run(&StudyConfig::smoke().with_threads(threads));
        group.bench_with_input(BenchmarkId::new("threads", threads), &study, |b, study| {
            b.iter(|| {
                (
                    study.queue_time_by_machine(),
                    study.exec_time_by_machine(),
                    study.pending_jobs_by_machine(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_des,
    bench_des_engines,
    bench_workload_generation,
    bench_fair_share_queue,
    bench_event_queue,
    bench_study_analysis
);
criterion_main!(benches);
