//! # qcs-cloud
//!
//! A discrete-event simulator of a quantum cloud service for the `qcs`
//! study: jobs ([`JobSpec`]) arrive at machines, wait in per-machine
//! [`FairShareQueue`]s (IBM-style dynamic priority), execute under the
//! machine's cost model with fault injection, and leave [`JobRecord`]s.
//! Queue lengths are sampled periodically ([`QueueSample`]).
//!
//! This crate is the substitute for IBM's production cloud in the paper's
//! queuing and execution analyses (Figs 2-4 and 9-14).
//!
//! # Examples
//!
//! ```
//! use qcs_cloud::{CloudConfig, JobSpec, Simulation};
//! use qcs_machine::Fleet;
//!
//! let jobs: Vec<JobSpec> = (0..10)
//!     .map(|i| JobSpec {
//!         id: i, provider: (i % 3) as u32, machine: 1, circuits: 20,
//!         shots: 1024, mean_depth: 15.0, mean_width: 3.0,
//!         submit_s: i as f64, is_study: true, patience_s: f64::INFINITY,
//!     })
//!     .collect();
//! let result = Simulation::new(Fleet::ibm_like(), CloudConfig::default()).run(jobs);
//! assert_eq!(result.records.len(), 10);
//! // Later arrivals on a busy machine wait longer.
//! assert!(result.records.iter().any(|r| r.queue_time_s() > 0.0));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod audit;
pub mod calendar;
mod discipline;
mod fairshare;
mod job;
mod live;
mod outage;
pub mod reference;
mod sim;
mod streaming;
mod sweep;
pub mod trace;

pub use audit::{AuditReport, AuditViolation, Auditor};
pub use calendar::Calendar;
pub use discipline::{Discipline, JobQueue};
pub use fairshare::FairShareQueue;
pub use job::{JobOutcome, JobRecord, JobSpec, QueueItem, QueueSample};
pub use live::{JobStatus, LiveCloud, RecordTapFn, SubmitError};
pub use outage::OutagePlan;
pub use sim::{CloudConfig, DesEngine, RecordSink, Simulation, SimulationResult};
pub use streaming::StreamingAggregates;
pub use sweep::{run_sweep, SweepCell, SweepConfig};
