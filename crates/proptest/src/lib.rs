//! An offline, in-workspace stand-in for the subset of the `proptest` API
//! this workspace uses: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, range and tuple strategies, [`collection::vec`], and the
//! `prop_assert*` macros.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be resolved; this crate is path-substituted for it. It
//! keeps the property-based *testing* semantics (many random cases per
//! property, deterministic per test name) but does not implement
//! shrinking: a failing case panics with the assert message directly.

#![warn(clippy::all)]

use rand::SeedableRng;

/// The RNG driving case generation.
pub type TestRng = rand::rngs::StdRng;

/// Per-property configuration (case count only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for `Vec`s of `element` values with a length drawn from
    /// `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Deterministic per-test seed derived from the property name.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Build a fresh case-generation RNG for a property name.
#[must_use]
pub fn test_rng(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for(name))
}

/// Assert inside a property (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property (behaves like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__cfg.cases {
                    let ( $($pat,)+ ) =
                        ( $( $crate::Strategy::generate(&($strat), &mut __rng), )+ );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 2usize..10, y in -1.5f64..1.5) {
            prop_assert!((2..10).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u8..4, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn prop_map_applies(n in (0u32..5).prop_map(|n| n * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
    }
}
