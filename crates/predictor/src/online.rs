//! Online queue-time prediction: the streaming counterpart of the batch
//! Figs 15–16 pipeline.
//!
//! [`OnlinePredictor`] folds terminal [`JobRecord`]s one at a time — as
//! the gateway's `LiveCloud` emits them — and keeps three things current:
//!
//! - an incremental **queue-wait model** (per-machine running mean
//!   service times with a fleet-mean fallback, plus a 10–90 % band of
//!   `actual/predicted` wait ratios tracked by P² quantile estimators),
//! - an online **runtime model**: the paper's `Π(aᵢ + bᵢxᵢ)` product
//!   model refit by mini-batch Gauss–Newton over a bounded window of
//!   recent jobs, warm-started from the previous coefficients
//!   ([`ProductModel::fit_from`]) so each refit is a handful of damped
//!   steps instead of a cold Levenberg–Marquardt descent,
//! - **prequential accuracy counters**: every record is scored against
//!   the model *as it stood before folding that record* (the classic
//!   test-then-train protocol), giving an honest rolling median absolute
//!   error and band-coverage rate with no held-out split.
//!
//! Memory is O(window + machines): nothing materializes the record
//! stream, so the predictor rides the same streaming path as the
//! `RecordSink` aggregates.

use std::collections::VecDeque;
use std::fmt;

use qcs_cloud::{JobOutcome, JobRecord};
use qcs_stats::{P2Quantile, ProductModel};

use crate::{JobFeatures, NUM_FEATURES};

/// Bounded window of recent `(features, runtime)` rows the runtime model
/// refits over.
pub const ONLINE_WINDOW: usize = 512;
/// Completed jobs between runtime-model refits once the model exists.
pub const ONLINE_REFIT_EVERY: usize = 64;
/// Completed jobs required before the first runtime-model fit.
const MIN_FIT: usize = 16;
/// LM iterations for a warm-started refit (mini-batch Gauss–Newton).
/// Warm starts resume from coefficients fitted 64 rows ago over a
/// 512-row window, so a few damped steps re-converge; the budget is the
/// dominant per-refit cost and is sized accordingly.
const WARM_ITERATIONS: usize = 6;
/// LM iterations for the cold first fit.
const COLD_ITERATIONS: usize = 200;

/// Why [`OnlinePredictor::predict`] could not produce an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictError {
    /// No completed job has been observed yet — there is nothing to
    /// estimate service times from.
    NotReady,
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::NotReady => {
                write!(f, "no completed jobs observed yet; prediction not ready")
            }
        }
    }
}

impl std::error::Error for PredictError {}

/// A queue-time estimate: point wait, 10–90 % band, and expected runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitEstimate {
    /// Point estimate of the queue wait, seconds.
    pub wait_s: f64,
    /// 10th-percentile wait (lower band edge), seconds.
    pub wait_lo_s: f64,
    /// 90th-percentile wait (upper band edge), seconds.
    pub wait_hi_s: f64,
    /// Expected execution time of the job itself, seconds.
    pub run_s: f64,
}

/// The online predictor: fold records with [`observe`](Self::observe),
/// query with [`predict`](Self::predict), read accuracy counters any
/// time.
#[derive(Debug)]
pub struct OnlinePredictor {
    /// Qubit count per machine index, for runtime-feature extraction.
    machine_qubits: Vec<usize>,

    // Incremental queue-wait model.
    service_sum_s: Vec<f64>,
    service_count: Vec<u64>,
    fleet_sum_s: f64,
    fleet_count: u64,
    band_lo: P2Quantile,
    band_hi: P2Quantile,

    // Online runtime model over a bounded window. Rows are fixed-size
    // arrays and the refit scratch is reused, so folding a record never
    // allocates off the happy path (the gateway taps this once per
    // terminal job).
    window: VecDeque<([f64; NUM_FEATURES], f64)>,
    since_refit: usize,
    model: Option<ProductModel>,
    scale: Vec<f64>,
    active: Vec<bool>,
    /// Flat row-major normalized feature matrix reused across refits.
    fit_rows: Vec<f64>,
    /// Target buffer reused across refits.
    fit_targets: Vec<f64>,

    // Running feature means, to fill in depth/width at predict time
    // (the PREDICT verb only carries machine/circuits/shots).
    depth_sum: f64,
    width_sum: f64,
    feature_count: u64,

    // Prequential (test-then-train) accuracy.
    observed: u64,
    scored: u64,
    in_band: u64,
    abs_err_min: P2Quantile,
}

impl OnlinePredictor {
    /// An empty predictor for a fleet whose machine `i` has
    /// `machine_qubits[i]` qubits. Machines past the table (external
    /// traces) contribute 0-qubit feature rows instead of panicking.
    #[must_use]
    pub fn new(machine_qubits: Vec<usize>) -> Self {
        let machines = machine_qubits.len();
        OnlinePredictor {
            machine_qubits,
            service_sum_s: vec![0.0; machines],
            service_count: vec![0; machines],
            fleet_sum_s: 0.0,
            fleet_count: 0,
            band_lo: P2Quantile::new(0.10),
            band_hi: P2Quantile::new(0.90),
            window: VecDeque::with_capacity(ONLINE_WINDOW),
            since_refit: 0,
            model: None,
            scale: Vec::new(),
            active: Vec::new(),
            fit_rows: Vec::new(),
            fit_targets: Vec::new(),
            depth_sum: 0.0,
            width_sum: 0.0,
            feature_count: 0,
            observed: 0,
            scored: 0,
            in_band: 0,
            abs_err_min: P2Quantile::new(0.5),
        }
    }

    /// Has at least one completed job been folded? Until then
    /// [`predict`](Self::predict) returns [`PredictError::NotReady`].
    #[must_use]
    pub fn ready(&self) -> bool {
        self.fleet_count > 0
    }

    /// Terminal records folded so far (all outcomes).
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Records that were prequentially scored (completed, waited, and
    /// arrived after the model was ready).
    #[must_use]
    pub fn scored(&self) -> u64 {
        self.scored
    }

    /// Rolling median absolute wait error in minutes (prequential);
    /// `0.0` before anything has been scored.
    #[must_use]
    pub fn median_abs_error_min(&self) -> f64 {
        self.abs_err_min.estimate().unwrap_or(0.0)
    }

    /// Fraction of scored waits that fell inside the 10–90 % band at
    /// scoring time; `0.0` before anything has been scored.
    #[must_use]
    pub fn band_coverage(&self) -> f64 {
        if self.scored == 0 {
            0.0
        } else {
            self.in_band as f64 / self.scored as f64
        }
    }

    /// Fold one terminal record. Scores the *current* model first
    /// (test-then-train), then updates the queue means, band, feature
    /// means, and runtime window — refitting the runtime model every
    /// [`ONLINE_REFIT_EVERY`] completions.
    pub fn observe(&mut self, record: &JobRecord) {
        self.observed += 1;
        if record.outcome != JobOutcome::Completed {
            return;
        }

        // Test before train: score the pre-update model on this record.
        let waited = record.pending_at_submit > 0 && record.queue_time_s() > 0.0;
        if self.ready() && waited {
            let predicted = self.predict_wait_s(record.machine, record.pending_at_submit);
            let actual = record.queue_time_s();
            let err_min = (predicted - actual).abs() / 60.0;
            if err_min.is_finite() {
                self.scored += 1;
                self.abs_err_min.push(err_min);
                let (lo, hi) = self.band_s(predicted);
                if (lo..=hi).contains(&actual) {
                    self.in_band += 1;
                }
            }
        }

        // Queue model update.
        let exec = record.exec_time_s();
        if record.machine >= self.service_sum_s.len() {
            self.service_sum_s.resize(record.machine + 1, 0.0);
            self.service_count.resize(record.machine + 1, 0);
        }
        self.service_sum_s[record.machine] += exec;
        self.service_count[record.machine] += 1;
        self.fleet_sum_s += exec;
        self.fleet_count += 1;
        if waited {
            let predicted = self.predict_wait_s(record.machine, record.pending_at_submit);
            let ratio = record.queue_time_s() / predicted.max(1e-9);
            if ratio.is_finite() {
                self.band_lo.push(ratio);
                self.band_hi.push(ratio);
            }
        }

        // Feature means for predict-time fill-in.
        if record.mean_depth.is_finite() && record.mean_width.is_finite() {
            self.depth_sum += record.mean_depth;
            self.width_sum += record.mean_width;
            self.feature_count += 1;
        }

        // Runtime window + periodic mini-batch refit.
        let qubits = self.machine_qubits.get(record.machine).copied().unwrap_or(0);
        let row = JobFeatures::from_record(record, qubits).to_array();
        if row.iter().all(|x| x.is_finite()) && exec.is_finite() {
            if self.window.len() == ONLINE_WINDOW {
                self.window.pop_front();
            }
            self.window.push_back((row, exec));
            self.since_refit += 1;
            let due = match self.model {
                None => self.window.len() >= MIN_FIT,
                Some(_) => self.since_refit >= ONLINE_REFIT_EVERY,
            };
            if due {
                self.refit();
            }
        }
    }

    /// Estimate wait and runtime for a prospective job: `pending` jobs
    /// ahead on `machine`, a batch of `circuits` circuits at `shots`
    /// shots each. Depth/width are filled from the running means of the
    /// observed stream.
    ///
    /// # Errors
    ///
    /// [`PredictError::NotReady`] until one completed job has been
    /// observed.
    pub fn predict(
        &self,
        machine: usize,
        circuits: u32,
        shots: u32,
        pending: usize,
    ) -> Result<WaitEstimate, PredictError> {
        if !self.ready() {
            return Err(PredictError::NotReady);
        }
        let wait_s = self.predict_wait_s(machine, pending);
        let (wait_lo_s, wait_hi_s) = self.band_s(wait_s);
        let run_s = self
            .predict_run_s(machine, circuits, shots)
            .unwrap_or_else(|| self.mean_service_s(machine));
        Ok(WaitEstimate {
            wait_s,
            wait_lo_s,
            wait_hi_s,
            run_s,
        })
    }

    /// Point wait estimate: backlog × learned mean service time.
    #[must_use]
    pub fn predict_wait_s(&self, machine: usize, pending: usize) -> f64 {
        pending as f64 * self.mean_service_s(machine)
    }

    /// Running mean service time of `machine`, seconds; the fleet mean
    /// for machines with no data (or outside the table).
    #[must_use]
    pub fn mean_service_s(&self, machine: usize) -> f64 {
        let fleet = if self.fleet_count == 0 {
            0.0
        } else {
            self.fleet_sum_s / self.fleet_count as f64
        };
        match (
            self.service_sum_s.get(machine),
            self.service_count.get(machine),
        ) {
            (Some(&sum), Some(&count)) if count > 0 => sum / count as f64,
            _ => fleet,
        }
    }

    /// The current 10–90 % band around a point wait, seconds.
    fn band_s(&self, wait_s: f64) -> (f64, f64) {
        let lo_q = self.band_lo.estimate().unwrap_or(1.0).max(1e-3);
        let hi_q = self.band_hi.estimate().unwrap_or(1.0).max(1e-3);
        let (lo_q, hi_q) = if lo_q <= hi_q { (lo_q, hi_q) } else { (hi_q, lo_q) };
        (wait_s * lo_q, wait_s * hi_q)
    }

    /// Runtime estimate from the online product model, if fitted.
    fn predict_run_s(&self, machine: usize, circuits: u32, shots: u32) -> Option<f64> {
        let model = self.model.as_ref()?;
        if self.feature_count == 0 {
            return None;
        }
        let depth = self.depth_sum / self.feature_count as f64;
        let width = self.width_sum / self.feature_count as f64;
        let qubits = self.machine_qubits.get(machine).copied().unwrap_or(0);
        let features = JobFeatures {
            batch_size: f64::from(circuits),
            shots: f64::from(shots),
            depth,
            width,
            total_gates: depth * width * 0.6,
            machine_qubits: qubits as f64,
            memory_slots: crate::memory_slots(circuits, shots, width),
        };
        let raw = features.to_vec();
        let normalized: Vec<f64> = raw
            .iter()
            .zip(self.scale.iter().zip(&self.active))
            .map(|(&x, (&s, &alive))| if alive { x / s } else { 0.0 })
            .collect();
        let run = model.predict(&normalized);
        run.is_finite().then(|| run.max(0.0))
    }

    /// Refit the product model over the window: recompute normalization,
    /// rescale the previous slopes to the new scales (the model sees
    /// `x/s`, so keeping `a + b'·x/s' == a + b·x/s` needs `b' = b·s'/s`),
    /// and take a few damped Gauss–Newton steps from there.
    fn refit(&mut self) {
        self.since_refit = 0;
        if self.window.is_empty() {
            return;
        }
        let k = NUM_FEATURES;
        let mut new_scale = [0.0f64; NUM_FEATURES];
        for (row, _) in &self.window {
            for (s, &x) in new_scale.iter_mut().zip(row) {
                *s = s.max(x.abs());
            }
        }
        let new_active: Vec<bool> = new_scale.iter().map(|&s| s > 0.0).collect();
        for s in &mut new_scale {
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        // Normalize into the reused flat matrix: the whole refit performs
        // O(1) allocations regardless of window size.
        self.fit_rows.clear();
        self.fit_targets.clear();
        for (row, y) in &self.window {
            self.fit_rows
                .extend(row.iter().zip(&new_scale).map(|(&x, &s)| x / s));
            self.fit_targets.push(*y);
        }

        let fitted = match self.model.take() {
            Some(prev) if prev.num_features() == k && !self.scale.is_empty() => {
                let b: Vec<f64> = prev
                    .b
                    .iter()
                    .zip(new_scale.iter().zip(&self.scale))
                    .map(|(&b, (&s_new, &s_old))| b * (s_new / s_old.max(1e-12)))
                    .collect();
                let init = ProductModel { a: prev.a, b };
                ProductModel::fit_flat(&init, &self.fit_rows, k, &self.fit_targets, WARM_ITERATIONS)
            }
            _ => {
                let mean_y =
                    self.fit_targets.iter().sum::<f64>() / self.fit_targets.len().max(1) as f64;
                let init_a = mean_y.abs().max(1e-6).powf(1.0 / k as f64);
                let init = ProductModel {
                    a: vec![init_a; k],
                    b: vec![0.0; k],
                };
                ProductModel::fit_flat(&init, &self.fit_rows, k, &self.fit_targets, COLD_ITERATIONS)
            }
        };
        self.model = Some(fitted);
        self.scale = new_scale.to_vec();
        self.active = new_active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuntimePredictor;
    use proptest::prelude::*;

    /// The same machine-overhead + batch/shots runtime law the batch
    /// predictor tests use, plus queue waits proportional to backlog.
    fn synthetic_stream(n: usize, seed: u64) -> Vec<JobRecord> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|i| {
                let machine = (next() % 3) as usize;
                let qubits = [5.0, 27.0, 65.0][machine];
                let circuits = (next() % 200 + 1) as u32;
                let shots = [1024u32, 4096, 8192][(next() % 3) as usize];
                let depth = (next() % 40 + 5) as f64;
                let width = (next() % 5 + 1) as f64;
                let pending = (next() % 6) as usize;
                let exec = 3.0
                    + 0.1 * qubits
                    + f64::from(circuits)
                        * (0.02 + f64::from(shots) * (200.0 + 1.5 * qubits + depth * 0.3) * 1e-6);
                let wait = pending as f64 * 120.0;
                JobRecord {
                    id: i as u64,
                    provider: 0,
                    machine,
                    circuits,
                    shots,
                    mean_width: width,
                    mean_depth: depth,
                    is_study: true,
                    submit_s: 0.0,
                    start_s: wait,
                    end_s: wait + exec,
                    outcome: JobOutcome::Completed,
                    pending_at_submit: pending,
                    crossed_calibration: false,
                }
            })
            .collect()
    }

    #[test]
    fn not_ready_until_first_completion() {
        let mut online = OnlinePredictor::new(vec![5, 27, 65]);
        assert_eq!(
            online.predict(0, 10, 1024, 3).unwrap_err(),
            PredictError::NotReady
        );
        let mut cancelled = synthetic_stream(1, 1).remove(0);
        cancelled.outcome = JobOutcome::Cancelled;
        online.observe(&cancelled);
        assert!(!online.ready(), "cancelled jobs must not make it ready");
        assert_eq!(online.observed(), 1);
        let completed = synthetic_stream(1, 2).remove(0);
        online.observe(&completed);
        assert!(online.ready());
        let estimate = online.predict(0, 10, 1024, 3).expect("ready");
        assert!(estimate.wait_s >= 0.0);
        assert!(estimate.wait_lo_s <= estimate.wait_hi_s);
        assert!(estimate.run_s >= 0.0);
    }

    #[test]
    fn wait_estimates_track_backlog_times_service() {
        let mut online = OnlinePredictor::new(vec![5, 27, 65]);
        for r in synthetic_stream(300, 3) {
            online.observe(&r);
        }
        // Mean service on each machine is deterministic for the law above;
        // the wait prediction must be pending-linear in it.
        let one = online.predict_wait_s(0, 1);
        let five = online.predict_wait_s(0, 5);
        assert!(one > 0.0);
        assert!((five - 5.0 * one).abs() < 1e-9);
        // Out-of-table machine falls back to the fleet mean, no panic.
        let fleet = online.predict_wait_s(99, 1);
        assert!(fleet > 0.0);
    }

    #[test]
    fn prequential_counters_update_and_stay_finite() {
        let mut online = OnlinePredictor::new(vec![5, 27, 65]);
        for r in synthetic_stream(400, 4) {
            online.observe(&r);
        }
        assert_eq!(online.observed(), 400);
        assert!(online.scored() > 100, "scored {}", online.scored());
        assert!(online.median_abs_error_min().is_finite());
        let coverage = online.band_coverage();
        assert!((0.0..=1.0).contains(&coverage), "coverage {coverage}");
        // Waits in the stream are a constant 120 s per pending job while
        // learned service means differ per machine, so errors are small
        // but nonzero and the band adapts around the observed ratios.
        assert!(coverage > 0.5, "coverage {coverage}");
    }

    #[test]
    fn window_stays_bounded() {
        let mut online = OnlinePredictor::new(vec![5, 27, 65]);
        for r in synthetic_stream(2 * ONLINE_WINDOW + 37, 5) {
            online.observe(&r);
        }
        assert!(online.window.len() <= ONLINE_WINDOW);
        assert!(online.model.is_some());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The online-vs-batch convergence property: on a stationary
        /// stream, the warm-started mini-batch Gauss–Newton coefficients
        /// must predict within 15 % of the batch Levenberg–Marquardt fit
        /// on the same law. (The product model's coefficients are only
        /// identifiable up to per-factor rescaling, so the comparison is
        /// on predictions, not raw a/b vectors.)
        #[test]
        fn online_fit_converges_to_batch_fit(seed in 0u64..1000) {
            let records = synthetic_stream(600, seed);
            let qubits = vec![5usize, 27, 65];

            let mut online = OnlinePredictor::new(qubits.clone());
            for r in &records {
                online.observe(r);
            }

            // Batch fit over the online model's window (the stream is
            // stationary, so this is the same law either way).
            let tail = &records[records.len() - ONLINE_WINDOW..];
            let rows: Vec<Vec<f64>> = tail
                .iter()
                .map(|r| JobFeatures::from_record(r, qubits[r.machine]).to_vec())
                .collect();
            let runtimes: Vec<f64> = tail.iter().map(|r| r.exec_time_s()).collect();
            let batch = RuntimePredictor::fit(&rows, &runtimes);

            for r in records.iter().step_by(37) {
                let batch_pred =
                    batch.predict(&JobFeatures::from_record(r, qubits[r.machine]).to_vec());
                let online_pred = online
                    .predict_run_s(r.machine, r.circuits, r.shots)
                    .expect("model fitted");
                // predict_run_s fills depth/width from running means, so
                // compare against the batch model on the same fill-in.
                let depth = online.depth_sum / online.feature_count as f64;
                let width = online.width_sum / online.feature_count as f64;
                let filled = JobFeatures {
                    batch_size: f64::from(r.circuits),
                    shots: f64::from(r.shots),
                    depth,
                    width,
                    total_gates: depth * width * 0.6,
                    machine_qubits: qubits[r.machine] as f64,
                    memory_slots: crate::memory_slots(r.circuits, r.shots, width),
                };
                let batch_filled = batch.predict(&filled.to_vec());
                let rel = (online_pred - batch_filled).abs() / batch_filled.abs().max(1e-6);
                prop_assert!(
                    rel < 0.15,
                    "online {online_pred} vs batch {batch_filled} (rel {rel}, raw batch {batch_pred})"
                );
            }
        }
    }
}
