//! ASCII circuit rendering.
//!
//! [`draw`] lays instructions out in ASAP layers and renders one text row
//! per qubit with vertical connectors for two-qubit gates — enough to eyeball
//! a compiled circuit or show how a layout changed between calibrations.

use crate::{dag, Circuit, Gate};

/// Short cell label for a gate on one of its operand rows.
fn cell_label(gate: &Gate, operand_index: usize) -> String {
    match gate {
        Gate::Id => "I".to_string(),
        Gate::X => "X".to_string(),
        Gate::Y => "Y".to_string(),
        Gate::Z => "Z".to_string(),
        Gate::H => "H".to_string(),
        Gate::S => "S".to_string(),
        Gate::Sdg => "S+".to_string(),
        Gate::T => "T".to_string(),
        Gate::Tdg => "T+".to_string(),
        Gate::Sx => "SX".to_string(),
        Gate::Rx(t) => format!("RX({t:.2})"),
        Gate::Ry(t) => format!("RY({t:.2})"),
        Gate::Rz(t) => format!("RZ({t:.2})"),
        Gate::U(..) => "U".to_string(),
        Gate::Cp(t) => {
            if operand_index == 0 {
                "o".to_string()
            } else {
                format!("P({t:.2})")
            }
        }
        Gate::Cx => {
            if operand_index == 0 {
                "o".to_string()
            } else {
                "X".to_string()
            }
        }
        Gate::Cz => "o".to_string(),
        Gate::Swap => "x".to_string(),
        Gate::Measure => "M".to_string(),
        Gate::Reset => "|0>".to_string(),
        Gate::Barrier => "░".to_string(),
    }
}

/// Render `circuit` as ASCII art, one row per qubit, ASAP layer per
/// column.
///
/// # Examples
///
/// ```
/// use qcs_circuit::{draw, Circuit};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1).measure_all();
/// let art = draw(&bell);
/// assert!(art.contains("q0:"));
/// assert!(art.contains("H"));
/// assert!(art.contains("M"));
/// ```
#[must_use]
pub fn draw(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    if n == 0 {
        return String::new();
    }
    let layers = dag::layers(circuit);
    let instructions = circuit.instructions();

    // cells[row][column]: label on qubit rows; connector flags between.
    let num_columns = layers.len();
    let mut labels: Vec<Vec<String>> = vec![vec![String::new(); num_columns]; n];
    // connector[gap][column]: a vertical link crosses the gap between
    // qubit `gap` and `gap + 1` in this column.
    let mut connector: Vec<Vec<bool>> = vec![vec![false; num_columns]; n.saturating_sub(1)];

    for (column, layer) in layers.iter().enumerate() {
        for &idx in layer {
            let inst = &instructions[idx];
            let rows: Vec<usize> = inst.qubits.iter().map(|q| q.index()).collect();
            for (operand_index, &row) in rows.iter().enumerate() {
                labels[row][column] = cell_label(&inst.gate, operand_index);
            }
            if rows.len() >= 2 {
                let lo = *rows.iter().min().expect("two operands");
                let hi = *rows.iter().max().expect("two operands");
                for gap_row in &mut connector[lo..hi] {
                    gap_row[column] = true;
                }
            }
        }
    }

    // Column widths: widest label + padding.
    let widths: Vec<usize> = (0..num_columns)
        .map(|c| {
            (0..n)
                .map(|r| labels[r][c].chars().count())
                .max()
                .unwrap_or(1)
                .max(1)
                + 2
        })
        .collect();

    let name_width = format!("q{}", n - 1).len();
    let mut out = String::new();
    for row in 0..n {
        // Qubit wire line.
        out.push_str(&format!("{:<width$}: ", format!("q{row}"), width = name_width));
        for (column, &w) in widths.iter().enumerate() {
            let label = &labels[row][column];
            let label_len = label.chars().count();
            let total_pad = w - label_len;
            let left = total_pad / 2;
            let right = total_pad - left;
            out.push_str(&"─".repeat(left));
            if label.is_empty() {
                out.push('─');
                out.push_str(&"─".repeat(right.saturating_sub(1)));
            } else {
                out.push_str(label);
                out.push_str(&"─".repeat(right));
            }
        }
        out.push('\n');
        // Connector line below (except after the last qubit).
        if row + 1 < n {
            let has_any = (0..num_columns).any(|c| connector[row][c]);
            if has_any {
                out.push_str(&" ".repeat(name_width + 2));
                for (column, &w) in widths.iter().enumerate() {
                    let mid = w / 2;
                    for pos in 0..w {
                        out.push(if connector[row][column] && pos == mid {
                            '│'
                        } else {
                            ' '
                        });
                    }
                }
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn bell_drawing_structure() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let art = draw(&c);
        let lines: Vec<&str> = art.lines().collect();
        // q0 wire, connector, q1 wire.
        assert!(lines[0].starts_with("q0:"));
        assert!(lines[0].contains('H'));
        assert!(lines[0].contains('o')); // cx control
        assert!(lines[1].contains('│')); // connector between rows
        assert!(lines[2].starts_with("q1:"));
        assert!(lines[2].contains('X')); // cx target
        assert_eq!(art.matches('M').count(), 2);
    }

    #[test]
    fn empty_circuit_draws_wires() {
        let c = Circuit::new(2);
        let art = draw(&c);
        assert!(art.contains("q0:"));
        assert!(art.contains("q1:"));
    }

    #[test]
    fn zero_qubits_is_empty() {
        assert_eq!(draw(&Circuit::new(0)), "");
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let art = draw(&c);
        let lines: Vec<&str> = art.lines().collect();
        let col0 = lines[0].find('H').unwrap();
        let col1 = lines[1].find('H').unwrap();
        assert_eq!(col0, col1, "parallel gates should align:\n{art}");
    }

    #[test]
    fn swap_uses_x_markers() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let art = draw(&c);
        assert_eq!(art.matches('x').count(), 2);
    }

    #[test]
    fn connector_spans_distant_qubits() {
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let art = draw(&c);
        // Three gap lines each carrying a connector.
        assert!(art.matches('│').count() >= 3, "{art}");
    }

    #[test]
    fn rotation_labels_carry_angles() {
        let mut c = Circuit::new(1);
        c.rz(1.5, 0);
        assert!(draw(&c).contains("RZ(1.50)"));
    }

    #[test]
    fn qft_draws_without_panic() {
        let art = draw(&library::qft(5));
        assert!(art.lines().count() >= 5);
    }
}
