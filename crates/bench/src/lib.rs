//! # qcs-bench
//!
//! The benchmark harness of the `qcs` study: one `fig*` binary per figure
//! of the paper (each prints the figure's data series and writes a CSV
//! under `target/figures/`), `ablation_*` binaries for the design-choice
//! studies listed in DESIGN.md, and Criterion micro-benchmarks over the
//! substrate crates.
//!
//! Run a figure:
//!
//! ```sh
//! cargo run --release -p qcs-bench --bin fig03_queue_sorted
//! cargo run --release -p qcs-bench --bin fig03_queue_sorted -- --smoke  # fast
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::io::Write as _;
use std::path::PathBuf;

use qcs::{Study, StudyConfig};

/// Parse the common `--smoke` flag and run the corresponding study.
///
/// The full (730-day) study takes a few seconds in release mode; `--smoke`
/// runs the two-week configuration.
#[must_use]
pub fn study_from_args() -> Study {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut config = if smoke {
        StudyConfig::smoke()
    } else {
        StudyConfig::full()
    };
    // Analysis worker-pool size; QCS_THREADS=1 forces sequential.
    config.exec = qcs::ExecConfig::from_env();
    eprintln!(
        "[qcs-bench] running {} study ({} days)...",
        if smoke { "smoke" } else { "full" },
        config.workload.days
    );
    let started = std::time::Instant::now();
    let study = Study::run(&config);
    eprintln!(
        "[qcs-bench] simulated {} jobs in {:?}",
        study.result().total_jobs,
        started.elapsed()
    );
    study
}

/// Directory where figure CSVs are written (`target/figures`).
#[must_use]
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Write a CSV with a header row; rows are pre-formatted strings.
///
/// # Panics
///
/// Panics on I/O errors (benchmark binaries want loud failures).
pub fn write_csv(name: &str, header: &str, rows: impl IntoIterator<Item = String>) {
    let path = figures_dir().join(name);
    let mut file = std::fs::File::create(&path).expect("create csv");
    writeln!(file, "{header}").expect("write header");
    for row in rows {
        writeln!(file, "{row}").expect("write row");
    }
    eprintln!("[qcs-bench] wrote {}", path.display());
}

/// Render a compact percentile table of a sorted series.
#[must_use]
pub fn percentile_table(sorted: &[f64], unit: &str) -> String {
    let q = |p: f64| qcs::stats::quantile_sorted(sorted, p).unwrap_or(f64::NAN);
    format!(
        "n={}  p10={:.2}{u}  p25={:.2}{u}  p50={:.2}{u}  p75={:.2}{u}  p90={:.2}{u}  p99={:.2}{u}",
        sorted.len(),
        q(0.10),
        q(0.25),
        q(0.50),
        q(0.75),
        q(0.90),
        q(0.99),
        u = unit
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_table_formats() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0];
        let t = percentile_table(&sorted, "m");
        assert!(t.contains("n=4"));
        assert!(t.contains("p50=2.50m"));
    }

    #[test]
    fn figures_dir_exists() {
        assert!(figures_dir().is_dir());
    }
}
