//! Ablation: noise-aware vs trivial vs dense layout — how much fidelity
//! does calibration-aware placement buy (paper §IV-B / Fig 12b rationale)?

use qcs::machine::Fleet;
use qcs::sim::{probability_of_success, qft_pos_circuit, NoisySimulator};
use qcs::transpiler::{transpile, LayoutMethod, Target, TranspileOptions};

fn main() {
    let fleet = Fleet::ibm_like();
    let circuit = qft_pos_circuit(4);
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "machine", "trivial", "dense", "noise-aware"
    );
    for name in ["casablanca", "guadalupe", "toronto", "manhattan"] {
        let machine = fleet.get(name).expect("machine exists");
        let target = Target::from_machine(machine, 36.0);
        let mut row = format!("{name:<12}");
        for layout in [LayoutMethod::Trivial, LayoutMethod::Dense, LayoutMethod::NoiseAware] {
            let options = TranspileOptions {
                layout,
                ..TranspileOptions::full()
            };
            let compiled = transpile(&circuit, &target, options).expect("transpiles");
            let (compact, region) = compiled.circuit.compacted();
            let snapshot = target.snapshot().restricted(&region);
            let counts = NoisySimulator::with_seed(5)
                .run(&compact, &snapshot, 8192)
                .expect("simulable");
            row.push_str(&format!("{:>11.1}%", 100.0 * probability_of_success(&counts, 0)));
        }
        println!("{row}");
    }
    println!("\n(noise-aware layout should dominate trivial placement on noisy machines)");
}
