//! The gate set understood by the rest of the system.
//!
//! The set mirrors the gates that appear in NISQ-era assembly: the IBM basis
//! gates (`id`, `rz`, `sx`, `x`, `cx`), the common named Clifford+T gates
//! used when authoring circuits, parametric rotations, and the non-unitary
//! `measure` / `reset` / `barrier` directives.

use std::f64::consts::PI;
use std::fmt;

/// A quantum gate or circuit directive.
///
/// Gates carry their continuous parameters inline (e.g. [`Gate::Rz`] holds
/// its rotation angle) so an instruction stream is fully self-describing.
///
/// # Examples
///
/// ```
/// use qcs_circuit::Gate;
///
/// let g = Gate::Rz(std::f64::consts::PI);
/// assert_eq!(g.num_qubits(), 1);
/// assert!(g.is_unitary());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Identity (explicit idle).
    Id,
    /// Pauli-X (bit flip).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z (phase flip).
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = sqrt(Z).
    S,
    /// S-dagger.
    Sdg,
    /// T = fourth root of Z.
    T,
    /// T-dagger.
    Tdg,
    /// Square root of X (an IBM basis gate).
    Sx,
    /// Rotation about X by the given angle (radians).
    Rx(f64),
    /// Rotation about Y by the given angle (radians).
    Ry(f64),
    /// Rotation about Z by the given angle (radians).
    Rz(f64),
    /// Generic single-qubit unitary U(theta, phi, lambda) in the OpenQASM
    /// convention.
    U(f64, f64, f64),
    /// Controlled-phase by the given angle (radians).
    Cp(f64),
    /// Controlled-X (CNOT). Qubit order is `[control, target]`.
    Cx,
    /// Controlled-Z.
    Cz,
    /// Logical swap of two qubit states.
    Swap,
    /// Projective measurement into a classical bit.
    Measure,
    /// Reset a qubit to |0>.
    Reset,
    /// Scheduling barrier; acts on any number of qubits, no effect on state.
    Barrier,
}

impl Gate {
    /// Number of qubits the gate acts on.
    ///
    /// [`Gate::Barrier`] conceptually spans a variable number of qubits; the
    /// instruction that carries it decides. This method reports `1` for it
    /// as the minimum.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::Cx | Gate::Cz | Gate::Swap | Gate::Cp(_) => 2,
            _ => 1,
        }
    }

    /// Whether the gate is a two-qubit entangling operation.
    ///
    /// Two-qubit gates dominate both error and duration on superconducting
    /// hardware, which is why the paper's fidelity metrics (CX-depth,
    /// CX-total) count exactly these.
    #[must_use]
    pub fn is_two_qubit(&self) -> bool {
        self.num_qubits() == 2
    }

    /// Whether the gate is a unitary operation (as opposed to measurement,
    /// reset, or a barrier directive).
    #[must_use]
    pub fn is_unitary(&self) -> bool {
        !matches!(self, Gate::Measure | Gate::Reset | Gate::Barrier)
    }

    /// Whether the gate is a pure directive with no effect on quantum state.
    #[must_use]
    pub fn is_directive(&self) -> bool {
        matches!(self, Gate::Barrier)
    }

    /// The lowercase OpenQASM-style mnemonic for this gate.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Gate::Id => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::U(..) => "u",
            Gate::Cp(_) => "cp",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
            Gate::Measure => "measure",
            Gate::Reset => "reset",
            Gate::Barrier => "barrier",
        }
    }

    /// The inverse gate, if the gate is unitary.
    ///
    /// Returns `None` for non-unitary directives.
    #[must_use]
    pub fn inverse(&self) -> Option<Gate> {
        Some(match self {
            Gate::Id => Gate::Id,
            Gate::X => Gate::X,
            Gate::Y => Gate::Y,
            Gate::Z => Gate::Z,
            Gate::H => Gate::H,
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::U(-PI / 2.0, -PI / 2.0, PI / 2.0),
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::U(t, p, l) => Gate::U(-t, -l, -p),
            Gate::Cp(t) => Gate::Cp(-t),
            Gate::Cx => Gate::Cx,
            Gate::Cz => Gate::Cz,
            Gate::Swap => Gate::Swap,
            Gate::Measure | Gate::Reset | Gate::Barrier => return None,
        })
    }

    /// Whether this gate is self-inverse (its own inverse).
    #[must_use]
    pub fn is_self_inverse(&self) -> bool {
        matches!(
            self,
            Gate::Id | Gate::X | Gate::Y | Gate::Z | Gate::H | Gate::Cx | Gate::Cz | Gate::Swap
        )
    }

    /// Whether the gate is diagonal in the computational basis (commutes
    /// with other diagonal gates and with the control side of a CX).
    #[must_use]
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::Id | Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::Rz(_)
                | Gate::Cz
                | Gate::Cp(_)
        )
    }

    /// The continuous parameters of the gate, in declaration order.
    #[must_use]
    pub fn params(&self) -> Vec<f64> {
        match self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Cp(t) => vec![*t],
            Gate::U(t, p, l) => vec![*t, *p, *l],
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let joined = params
                .iter()
                .map(|p| format!("{p:.6}"))
                .collect::<Vec<_>>()
                .join(",");
            write!(f, "{}({joined})", self.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(Gate::H.num_qubits(), 1);
        assert_eq!(Gate::Cx.num_qubits(), 2);
        assert_eq!(Gate::Swap.num_qubits(), 2);
        assert_eq!(Gate::Cp(0.5).num_qubits(), 2);
        assert!(Gate::Cx.is_two_qubit());
        assert!(!Gate::Rz(1.0).is_two_qubit());
    }

    #[test]
    fn unitary_classification() {
        assert!(Gate::H.is_unitary());
        assert!(!Gate::Measure.is_unitary());
        assert!(!Gate::Reset.is_unitary());
        assert!(!Gate::Barrier.is_unitary());
        assert!(Gate::Barrier.is_directive());
    }

    #[test]
    fn inverse_round_trips() {
        for g in [Gate::S, Gate::T, Gate::Rx(0.7), Gate::Rz(-1.2), Gate::Cp(0.3)] {
            let inv = g.inverse().unwrap();
            let back = inv.inverse().unwrap();
            assert_eq!(g, back, "double inverse of {g:?}");
        }
    }

    #[test]
    fn self_inverse_gates_are_their_own_inverse() {
        for g in [Gate::X, Gate::Y, Gate::Z, Gate::H, Gate::Cx, Gate::Cz, Gate::Swap] {
            assert!(g.is_self_inverse());
            assert_eq!(g.inverse(), Some(g));
        }
    }

    #[test]
    fn measure_has_no_inverse() {
        assert_eq!(Gate::Measure.inverse(), None);
        assert_eq!(Gate::Barrier.inverse(), None);
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::H.to_string(), "h");
        assert!(Gate::Rz(1.5).to_string().starts_with("rz(1.5"));
        assert_eq!(Gate::U(0.0, 0.0, 0.0).params().len(), 3);
    }

    #[test]
    fn diagonal_gates() {
        assert!(Gate::Rz(0.2).is_diagonal());
        assert!(Gate::Cz.is_diagonal());
        assert!(!Gate::H.is_diagonal());
        assert!(!Gate::Cx.is_diagonal());
    }
}
