//! # qcs-predictor
//!
//! Job runtime prediction for the `qcs` quantum-cloud study: the paper's
//! product-of-linear-terms model over execution, circuit, and
//! machine-overhead features (§VI-C), with 70/30 train/test evaluation and
//! per-machine Pearson correlations (Figs 15–16).
//!
//! # Examples
//!
//! ```
//! use qcs_predictor::{JobFeatures, RuntimePredictor};
//!
//! // Fit on (features, runtime) pairs; here a trivial single-feature law.
//! let rows = vec![vec![1.0], vec![2.0], vec![3.0]];
//! let runtimes = vec![10.0, 20.0, 30.0];
//! let predictor = RuntimePredictor::fit(&rows, &runtimes);
//! let p = predictor.predict(&[2.5]);
//! assert!((p - 25.0).abs() < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
// The online predictor sits on the gateway's serving path: like the
// gateway itself, non-test code must map bad input to typed errors
// instead of panicking.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod features;
mod online;
mod predictor;
mod queue;

pub use features::{memory_slots, JobFeatures, FEATURE_NAMES, NUM_FEATURES};
pub use online::{
    OnlinePredictor, PredictError, WaitEstimate, ONLINE_REFIT_EVERY, ONLINE_WINDOW,
};
pub use predictor::{run_prediction_study, MachineEvaluation, PredictionStudy, RuntimePredictor};
pub use queue::{evaluate_queue_prediction, QueueFitError, QueuePredictionReport, QueueWaitModel};
