//! Zipf-activity provider population: a streaming generator for
//! millions-of-users, million-job traces.
//!
//! Where [`generate`](crate::generate) materializes a whole [`Workload`]
//! (fine at 10⁴–10⁵ jobs), [`PopulationTrace`] is an `Iterator` that
//! yields [`JobSpec`]s one at a time in submit order: O(1) memory however
//! long the trace, so a ≥10⁶-job campaign can be streamed straight into a
//! chunked [`LiveCloud`](qcs_cloud::LiveCloud) driver without ever holding
//! the trace in memory.
//!
//! The activity model follows the adaptive-quantum-cloud framing of the
//! growing-demand regime: a population of `users` whose activity is
//! Zipf(1)-distributed by rank (a few power users dominate, a long tail
//! submits rarely), arriving as a Poisson process over the horizon. Users
//! map onto fair-share providers by `provider = (user - 1) % providers`,
//! which preserves the skew: provider 0 inherits rank 1 (the heaviest
//! user), so provider activity is itself Zipf-like — the contention
//! pattern cross-shard fair-share reconciliation has to get right.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qcs_cloud::JobSpec;
use qcs_machine::Fleet;

use crate::sampler;

/// Parameters of a streamed population trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationConfig {
    /// Population size; user activity ranks are Zipf(1) over `[1, users]`.
    pub users: u64,
    /// Fair-share providers; must match the simulator's
    /// `CloudConfig::num_providers`.
    pub providers: usize,
    /// Jobs to emit over the horizon.
    pub jobs: u64,
    /// Submission horizon, days. Arrivals are Poisson at rate
    /// `jobs / horizon`.
    pub horizon_days: f64,
    /// Per-job patience before abandonment, hours (`INFINITY` = never
    /// cancel).
    pub patience_hours: f64,
    /// RNG seed; the trace is a pure function of the config.
    pub seed: u64,
}

impl PopulationConfig {
    /// A million jobs from three million users over sixty days — the
    /// bounded-memory smoke-gate trace. Demand deliberately outpaces
    /// supply (the paper's growth regime); finite patience is what real
    /// users do under it, and it also bounds per-machine queue depth, so
    /// the overloaded fair-share scans stay O(patience-window) instead of
    /// O(backlog).
    #[must_use]
    pub fn million() -> PopulationConfig {
        PopulationConfig {
            users: 3_000_000,
            providers: 40,
            jobs: 1_000_000,
            horizon_days: 60.0,
            patience_hours: 6.0,
            seed: 7,
        }
    }

    /// A small trace with the same shape, for tests.
    #[must_use]
    pub fn smoke() -> PopulationConfig {
        PopulationConfig {
            jobs: 2_000,
            horizon_days: 2.0,
            ..PopulationConfig::million()
        }
    }
}

/// Per-machine caps copied out of the fleet so the iterator borrows
/// nothing.
#[derive(Debug, Clone, Copy)]
struct MachineCaps {
    qubits: usize,
    max_batch: u32,
    max_shots: u32,
}

/// Streaming job trace over a Zipf-activity population; see the module
/// docs. Yields jobs in nondecreasing `submit_s` order with ids
/// `0..jobs`.
#[derive(Debug, Clone)]
pub struct PopulationTrace {
    config: PopulationConfig,
    machines: Vec<MachineCaps>,
    rng: StdRng,
    emitted: u64,
    clock_s: f64,
    mean_gap_s: f64,
}

impl PopulationTrace {
    /// Build a trace over `fleet`'s machines.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet, zero users/providers, or a non-positive
    /// horizon.
    #[must_use]
    pub fn new(fleet: &Fleet, config: PopulationConfig) -> PopulationTrace {
        assert!(!fleet.is_empty(), "need at least one machine");
        assert!(config.users >= 1, "need at least one user");
        assert!(config.providers >= 1, "need at least one provider");
        assert!(config.horizon_days > 0.0, "horizon must be positive");
        let machines = fleet
            .machines()
            .iter()
            .map(|m| MachineCaps {
                qubits: m.num_qubits(),
                max_batch: m.max_batch_size() as u32,
                max_shots: m.max_shots(),
            })
            .collect();
        let mean_gap_s = config.horizon_days * 86_400.0 / config.jobs.max(1) as f64;
        PopulationTrace {
            config,
            machines,
            rng: StdRng::seed_from_u64(config.seed),
            emitted: 0,
            clock_s: 0.0,
            mean_gap_s,
        }
    }

    /// The config this trace was built from.
    #[must_use]
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }
}

impl Iterator for PopulationTrace {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        if self.emitted >= self.config.jobs {
            return None;
        }
        self.clock_s += sampler::exponential(&mut self.rng, self.mean_gap_s);
        let user = sampler::zipf_rank(&mut self.rng, self.config.users);
        let provider = ((user - 1) % self.config.providers as u64) as u32;
        let machine = self.rng.gen_range(0..self.machines.len());
        let caps = self.machines[machine];
        let id = self.emitted;
        self.emitted += 1;
        Some(JobSpec {
            id,
            provider,
            machine,
            circuits: sampler::batch_size(&mut self.rng, caps.max_batch),
            shots: sampler::shots(&mut self.rng, caps.max_shots),
            mean_depth: 15.0 + 0.3 * caps.qubits as f64,
            mean_width: sampler::width(&mut self.rng, caps.qubits) as f64,
            submit_s: self.clock_s,
            is_study: false,
            patience_s: self.config.patience_hours * 3600.0,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.config.jobs - self.emitted) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for PopulationTrace {}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(config: PopulationConfig) -> PopulationTrace {
        PopulationTrace::new(&Fleet::ibm_like(), config)
    }

    #[test]
    fn deterministic_and_submit_ordered() {
        let a: Vec<JobSpec> = trace(PopulationConfig::smoke()).collect();
        let b: Vec<JobSpec> = trace(PopulationConfig::smoke()).collect();
        assert_eq!(a, b, "pure function of the config");
        assert_eq!(a.len(), 2_000);
        assert!(a.windows(2).all(|w| w[0].submit_s <= w[1].submit_s));
        assert!(a.windows(2).all(|w| w[1].id == w[0].id + 1));
        let last = a.last().unwrap();
        // Poisson arrivals at rate jobs/horizon land the last job near
        // the horizon (well within ±20% at n = 2000).
        let horizon_s = 2.0 * 86_400.0;
        assert!(
            (last.submit_s / horizon_s - 1.0).abs() < 0.2,
            "last submit {} vs horizon {horizon_s}",
            last.submit_s
        );
    }

    #[test]
    fn provider_activity_inherits_zipf_skew() {
        let mut per_provider = vec![0u64; 40];
        for job in trace(PopulationConfig::smoke()) {
            per_provider[job.provider as usize] += 1;
        }
        // Rank 1 maps to provider 0. The modular fold means every
        // provider shares the same 1/rank tail (~ln(users)/40 mass each);
        // what distinguishes provider 0 is the rank-1 head, worth about
        // 3x a mid-pack provider at these parameters.
        assert!(
            per_provider[0] > 2 * per_provider[20].max(1),
            "provider 0: {}, provider 20: {}",
            per_provider[0],
            per_provider[20]
        );
        assert_eq!(per_provider.iter().sum::<u64>(), 2_000);
    }

    #[test]
    fn jobs_respect_machine_caps() {
        let fleet = Fleet::ibm_like();
        for job in trace(PopulationConfig::smoke()) {
            let m = &fleet.machines()[job.machine];
            assert!(job.circuits >= 1 && job.circuits <= m.max_batch_size() as u32);
            assert!(job.shots >= 1 && job.shots <= m.max_shots());
            assert!(job.mean_width >= 1.0 && job.mean_width <= m.num_qubits() as f64);
            assert_eq!(job.patience_s, 6.0 * 3600.0);
        }
    }

    #[test]
    fn iterator_is_sized() {
        let mut t = trace(PopulationConfig::smoke());
        assert_eq!(t.len(), 2_000);
        t.next();
        assert_eq!(t.len(), 1_999);
    }
}
