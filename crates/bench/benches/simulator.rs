//! Criterion benchmarks of the statevector and noisy simulators (the
//! substrate behind Fig 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcs_calibration::NoiseProfile;
use qcs_circuit::library;
use qcs_sim::{qft_pos_circuit, NoisySimulator, Statevector};
use qcs_topology::families;

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_qft");
    for n in [8usize, 12, 16] {
        let circuit = library::qft(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| Statevector::from_circuit(circuit).unwrap());
        });
    }
    group.finish();
}

fn bench_noisy_run(c: &mut Criterion) {
    let circuit = qft_pos_circuit(4);
    let snapshot = NoiseProfile::with_seed(1).snapshot(&families::complete(4), 0);
    let mut group = c.benchmark_group("noisy_qft4_pos");
    for shots in [1024u32, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(shots), &shots, |b, &shots| {
            b.iter(|| {
                NoisySimulator::with_seed(7)
                    .run(&circuit, &snapshot, shots)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_parallel_trajectories(c: &mut Criterion) {
    // The execution-engine scaling benchmark: a 16-trajectory 10-qubit
    // workload (the acceptance workload for the >= 2x @ 4-threads
    // criterion) swept across worker-pool sizes. Counts are bit-identical
    // across the whole sweep. `QCS_THREADS=t` appends an extra point for
    // machines whose interesting core count isn't in the default sweep.
    let circuit = qft_pos_circuit(10);
    let snapshot = NoiseProfile::with_seed(1).snapshot(&families::complete(10), 0);
    let mut thread_counts = vec![1usize, 2, 4, 8];
    let env = qcs_exec::ExecConfig::from_env().threads;
    if env != 0 && !thread_counts.contains(&env) {
        thread_counts.push(env);
    }
    let mut group = c.benchmark_group("noisy_qft10_traj16");
    for threads in thread_counts {
        let sim = NoisySimulator {
            trajectories: 16,
            seed: 7,
            ..NoisySimulator::default()
        }
        .with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &sim,
            |b, sim| {
                b.iter(|| sim.run(&circuit, &snapshot, 16_384).unwrap());
            },
        );
    }
    group.finish();

    // The pre-fusion per-instruction path, kept as the bit-identity
    // oracle: its single-thread time over `run`'s is the speedup the
    // fused + skip-ahead + pooled path buys (BENCH_sim.json).
    let reference = NoisySimulator {
        trajectories: 16,
        seed: 7,
        ..NoisySimulator::default()
    }
    .with_threads(1);
    let mut group = c.benchmark_group("noisy_qft10_traj16_reference");
    group.bench_with_input(BenchmarkId::new("threads", 1usize), &reference, |b, sim| {
        b.iter(|| sim.run_reference(&circuit, &snapshot, 16_384).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector,
    bench_noisy_run,
    bench_parallel_trajectories
);
criterion_main!(benches);
