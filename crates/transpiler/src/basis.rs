//! Basis translation: rewriting arbitrary gates into the IBM-style basis
//! `{rz, sx, x, cx}` (plus measure/reset/barrier).
//!
//! All decompositions are exact up to global phase; the simulator crate's
//! equivalence tests validate them against the statevector semantics.

use std::f64::consts::PI;

use qcs_circuit::{Circuit, Gate, Instruction, Qubit};

/// Whether `gate` is already a basis gate.
#[must_use]
pub fn is_basis_gate(gate: &Gate) -> bool {
    matches!(
        gate,
        Gate::Id
            | Gate::Rz(_)
            | Gate::Sx
            | Gate::X
            | Gate::Cx
            | Gate::Measure
            | Gate::Reset
            | Gate::Barrier
    )
}

/// Translate a circuit into the basis gate set.
///
/// Two-qubit gates become CX-based networks first (`swap` → 3 CX, `cz` and
/// `cp` → CX + single-qubit phases), then remaining single-qubit gates
/// become `rz`/`sx`/`x` sequences via the standard ZSXZSXZ decomposition.
///
/// # Examples
///
/// ```
/// use qcs_circuit::Circuit;
/// use qcs_transpiler::basis::{is_basis_gate, translate_to_basis};
///
/// let mut c = Circuit::new(2);
/// c.h(0).swap(0, 1);
/// let out = translate_to_basis(&c);
/// assert!(out.instructions().iter().all(|i| is_basis_gate(&i.gate)));
/// assert_eq!(out.cx_count(), 3); // the swap
/// ```
#[must_use]
pub fn translate_to_basis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_clbits(circuit.num_qubits(), circuit.num_clbits());
    for inst in circuit.instructions() {
        emit(&mut out, inst);
    }
    out
}

fn emit(out: &mut Circuit, inst: &Instruction) {
    let qs = &inst.qubits;
    match inst.gate {
        // Drop identity rotations even though rz is a basis gate.
        Gate::Rz(theta) => push_rz(out, qs[0], theta),
        g if is_basis_gate(&g) => {
            out.push(inst.clone());
        }
        // --- single-qubit rewrites -----------------------------------
        Gate::Z => push_rz(out, qs[0], PI),
        Gate::S => push_rz(out, qs[0], PI / 2.0),
        Gate::Sdg => push_rz(out, qs[0], -PI / 2.0),
        Gate::T => push_rz(out, qs[0], PI / 4.0),
        Gate::Tdg => push_rz(out, qs[0], -PI / 4.0),
        Gate::H => {
            // H = e^{i.} Rz(pi/2) Sx Rz(pi/2)
            push_rz(out, qs[0], PI / 2.0);
            push_1q(out, Gate::Sx, qs[0]);
            push_rz(out, qs[0], PI / 2.0);
        }
        Gate::Y => {
            // Y = i X Z: apply Z then X (global phase dropped).
            push_rz(out, qs[0], PI);
            push_1q(out, Gate::X, qs[0]);
        }
        Gate::Rx(theta) => emit_u(out, qs[0], theta, -PI / 2.0, PI / 2.0),
        Gate::Ry(theta) => emit_u(out, qs[0], theta, 0.0, 0.0),
        Gate::U(theta, phi, lambda) => emit_u(out, qs[0], theta, phi, lambda),
        // --- two-qubit rewrites --------------------------------------
        Gate::Cz => {
            // CZ = (I x H) CX (I x H)
            emit(out, &Instruction::gate(Gate::H, &[qs[1]]));
            push_cx(out, qs[0], qs[1]);
            emit(out, &Instruction::gate(Gate::H, &[qs[1]]));
        }
        Gate::Cp(lambda) => {
            // cp(l) = rz(l/2) on control; cx; rz(-l/2) target; cx; rz(l/2) target
            push_rz(out, qs[0], lambda / 2.0);
            push_cx(out, qs[0], qs[1]);
            push_rz(out, qs[1], -lambda / 2.0);
            push_cx(out, qs[0], qs[1]);
            push_rz(out, qs[1], lambda / 2.0);
        }
        Gate::Swap => {
            push_cx(out, qs[0], qs[1]);
            push_cx(out, qs[1], qs[0]);
            push_cx(out, qs[0], qs[1]);
        }
        ref g => unreachable!("gate {g:?} not covered by basis translation"),
    }
}

/// U(theta, phi, lambda) = Rz(phi + pi) Sx Rz(theta + pi) Sx Rz(lambda),
/// emitted in circuit (application) order.
fn emit_u(out: &mut Circuit, q: Qubit, theta: f64, phi: f64, lambda: f64) {
    push_rz(out, q, lambda);
    push_1q(out, Gate::Sx, q);
    push_rz(out, q, theta + PI);
    push_1q(out, Gate::Sx, q);
    push_rz(out, q, phi + PI);
}

fn push_rz(out: &mut Circuit, q: Qubit, theta: f64) {
    // Skip angles that are multiples of 2*pi.
    let reduced = theta.rem_euclid(2.0 * PI);
    if reduced.abs() > 1e-12 && (reduced - 2.0 * PI).abs() > 1e-12 {
        out.push(Instruction::gate(Gate::Rz(theta), &[q]));
    }
}

fn push_1q(out: &mut Circuit, gate: Gate, q: Qubit) {
    out.push(Instruction::gate(gate, &[q]));
}

fn push_cx(out: &mut Circuit, control: Qubit, target: Qubit) {
    out.push(Instruction::gate(Gate::Cx, &[control, target]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::library;

    fn all_basis(c: &Circuit) -> bool {
        c.instructions().iter().all(|i| is_basis_gate(&i.gate))
    }

    #[test]
    fn named_gates_translate() {
        let mut c = Circuit::new(2);
        c.h(0).s(0).t(1).z(1).y(0);
        let out = translate_to_basis(&c);
        assert!(all_basis(&out));
        assert_eq!(out.cx_count(), 0);
    }

    #[test]
    fn swap_is_three_cx() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let out = translate_to_basis(&c);
        assert_eq!(out.cx_count(), 3);
        assert!(all_basis(&out));
    }

    #[test]
    fn cz_is_one_cx() {
        let mut c = Circuit::new(2);
        c.cz(0, 1);
        let out = translate_to_basis(&c);
        assert_eq!(out.cx_count(), 1);
        assert!(all_basis(&out));
    }

    #[test]
    fn cp_is_two_cx() {
        let mut c = Circuit::new(2);
        c.cp(0.7, 0, 1);
        let out = translate_to_basis(&c);
        assert_eq!(out.cx_count(), 2);
        assert!(all_basis(&out));
    }

    #[test]
    fn qft_translates_fully() {
        let c = library::qft(5);
        let out = translate_to_basis(&c);
        assert!(all_basis(&out));
        // Each cp -> 2 cx, each swap -> 3 cx.
        let cps = 5 * 4 / 2;
        let swaps = 2;
        assert_eq!(out.cx_count(), 2 * cps + 3 * swaps);
        assert_eq!(out.measure_count(), 5);
    }

    #[test]
    fn trivial_rz_skipped() {
        let mut c = Circuit::new(1);
        c.rz(0.0, 0);
        let out = translate_to_basis(&c);
        assert_eq!(out.size(), 0);
    }

    #[test]
    fn measure_and_barrier_preserved() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.barrier();
        c.measure_all();
        let out = translate_to_basis(&c);
        assert_eq!(out.measure_count(), 2);
        assert!(all_basis(&out));
    }

    #[test]
    fn basis_translation_is_idempotent() {
        let c = library::qft(4);
        let once = translate_to_basis(&c);
        let twice = translate_to_basis(&once);
        assert_eq!(once, twice);
    }
}
