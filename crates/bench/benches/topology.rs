//! Criterion benchmarks of topology algorithms (the Fig 6 substrate).

use criterion::{criterion_group, criterion_main, Criterion};
use qcs_topology::{bisection_bandwidth, families};

fn bench_bisection(c: &mut Criterion) {
    let hummingbird = families::ibm_hummingbird_65q();
    let mesh = families::grid(8, 8);
    c.bench_function("bisection_hummingbird65", |b| {
        b.iter(|| bisection_bandwidth(&hummingbird));
    });
    c.bench_function("bisection_mesh8x8", |b| {
        b.iter(|| bisection_bandwidth(&mesh));
    });
}

fn bench_distances(c: &mut Criterion) {
    let big = families::heavy_hex(19, 45);
    c.bench_function("distance_matrix_1000q", |b| b.iter(|| big.distance_matrix()));
}

criterion_group!(benches, bench_bisection, bench_distances);
criterion_main!(benches);
