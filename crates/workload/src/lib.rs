//! # qcs-workload
//!
//! Synthetic multi-year quantum-cloud workload generation for the `qcs`
//! study: background demand calibrated to per-machine utilization targets
//! (with growth, diurnal and weekly cycles), plus an instrumented set of
//! *study jobs* carrying per-circuit benchmark detail. Feed the output of
//! [`generate`] into [`qcs_cloud::Simulation`].
//!
//! # Examples
//!
//! ```
//! use qcs_cloud::{CloudConfig, Simulation};
//! use qcs_machine::Fleet;
//! use qcs_workload::{generate, WorkloadConfig};
//!
//! let fleet = Fleet::ibm_like();
//! let workload = generate(&fleet, &WorkloadConfig::smoke());
//! let result = Simulation::new(fleet, CloudConfig::default()).run(workload.jobs);
//! assert!(result.total_jobs > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod generator;
pub mod ingest;
pub mod population;
pub mod sampler;

pub use generator::{family_name, generate, StudyCircuit, Workload, WorkloadConfig};
pub use ingest::{read_trace, IngestError, IngestedTrace, INGEST_HEADER};
pub use population::{PopulationConfig, PopulationTrace};
