//! Criterion benchmarks of the cloud DES and workload generator (the
//! substrate behind Figs 2-4 and 9-14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcs::{Study, StudyConfig};
use qcs_cloud::{CloudConfig, FairShareQueue, JobSpec, Simulation};
use qcs_machine::Fleet;
use qcs_workload::{generate, WorkloadConfig};

fn small_workload() -> (Fleet, Vec<JobSpec>) {
    let fleet = Fleet::ibm_like();
    let workload = generate(
        &fleet,
        &WorkloadConfig {
            days: 3.0,
            study_jobs: 100,
            ..WorkloadConfig::default()
        },
    );
    (fleet, workload.jobs)
}

fn bench_des(c: &mut Criterion) {
    let (fleet, jobs) = small_workload();
    c.bench_function("des_3day_trace", |b| {
        b.iter(|| {
            Simulation::new(fleet.clone(), CloudConfig::default()).run(jobs.clone())
        });
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    let fleet = Fleet::ibm_like();
    let config = WorkloadConfig {
        days: 3.0,
        study_jobs: 100,
        ..WorkloadConfig::default()
    };
    c.bench_function("workload_gen_3day", |b| b.iter(|| generate(&fleet, &config)));
}

fn bench_fair_share_queue(c: &mut Criterion) {
    c.bench_function("fairshare_push_pop_1k", |b| {
        b.iter(|| {
            let mut queue = FairShareQueue::new(40, 86_400.0);
            for i in 0..1000u64 {
                queue.push(JobSpec {
                    id: i,
                    provider: (i % 40) as u32,
                    machine: 0,
                    circuits: 10,
                    shots: 1024,
                    mean_depth: 20.0,
                    mean_width: 3.0,
                    submit_s: i as f64,
                    is_study: false,
                    patience_s: f64::INFINITY,
                });
            }
            let mut drained = 0usize;
            while let Some(job) = queue.pop(2000.0) {
                queue.charge(job.provider, 60.0, 2000.0);
                drained += 1;
            }
            drained
        });
    });
}

fn bench_study_analysis(c: &mut Criterion) {
    // Per-machine analysis fan-out (violins + pending-job scans) at 1 vs
    // 4 worker threads; results are identical, only wall-clock differs.
    let mut group = c.benchmark_group("study_analysis_smoke");
    for threads in [1usize, 4] {
        let study = Study::run(&StudyConfig::smoke().with_threads(threads));
        group.bench_with_input(BenchmarkId::new("threads", threads), &study, |b, study| {
            b.iter(|| {
                (
                    study.queue_time_by_machine(),
                    study.exec_time_by_machine(),
                    study.pending_jobs_by_machine(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_des,
    bench_workload_generation,
    bench_fair_share_queue,
    bench_study_analysis
);
criterion_main!(benches);
