//! Bounded retry with jittered exponential backoff.
//!
//! The jitter is *seeded* — derived per attempt through the same
//! SplitMix64 derivation (`qcs_exec::derive_seed`) the simulator uses for
//! per-trajectory RNG seeds — so a retry schedule is a pure function of
//! `(policy, attempt)`. Chaos tests can assert exact delays; production
//! callers get decorrelated jitter by varying the seed per client.

use std::time::Duration;

use qcs_exec::derive_seed;

/// A bounded-retry policy: up to [`max_retries`](RetryPolicy::max_retries)
/// re-attempts after the first try, sleeping a jittered exponential
/// backoff between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-attempts after the first try (`0` = never retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff (pre-jitter).
    pub max_delay: Duration,
    /// Seed for the per-attempt jitter derivation.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy that never retries.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            seed: 0,
        }
    }

    /// Total tries a request may consume (first attempt + retries).
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_retries.saturating_add(1)
    }

    /// The backoff before retry number `attempt` (0-based): the capped
    /// exponential `min(base << attempt, max)` scaled by a deterministic
    /// jitter factor in `[0.5, 1.0)` drawn from
    /// `derive_seed(seed, attempt)`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_delay
            .saturating_mul(1_u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay.max(self.base_delay));
        // 53 high-quality bits -> a float in [0, 1), mapped to [0.5, 1.0).
        let unit = (derive_seed(self.seed, u64::from(attempt)) >> 11) as f64
            / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + unit / 2.0)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            seed: 0,
        }
    }
}

/// What a retrying call observed, for folding into
/// [`GatewayMetrics`](crate::GatewayMetrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Re-attempts performed (transport errors and `BUSY` responses).
    pub retries: u64,
    /// Requests abandoned with their retry budget exhausted.
    pub giveups: u64,
}

impl RetryStats {
    /// Accumulate another stats block into this one.
    pub fn absorb(&mut self, other: RetryStats) {
        self.retries += other.retries;
        self.giveups += other.giveups;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(640),
            seed: 42,
        };
        for attempt in 0..6 {
            assert_eq!(policy.backoff(attempt), policy.backoff(attempt));
        }
        let other = RetryPolicy { seed: 43, ..policy };
        assert!(
            (0..6).any(|a| policy.backoff(a) != other.backoff(a)),
            "seed must influence jitter"
        );
    }

    #[test]
    fn backoff_grows_exponentially_within_jitter_bounds() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(8),
            max_delay: Duration::from_secs(2),
            seed: 7,
        };
        for attempt in 0..6u32 {
            let exp = Duration::from_millis(8 << attempt).min(Duration::from_secs(2));
            let delay = policy.backoff(attempt);
            assert!(delay >= exp.mul_f64(0.5), "attempt {attempt}: {delay:?} < half");
            assert!(delay < exp, "attempt {attempt}: {delay:?} >= full {exp:?}");
        }
    }

    #[test]
    fn backoff_caps_at_max_delay() {
        let policy = RetryPolicy {
            max_retries: 40,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(250),
            seed: 0,
        };
        // Shift amounts far past the cap (and past u32 overflow) saturate.
        for attempt in [10, 31, 32, 1000] {
            assert!(policy.backoff(attempt) < Duration::from_millis(250));
        }
    }

    #[test]
    fn zero_base_means_no_sleep() {
        assert_eq!(RetryPolicy::none().backoff(0), Duration::ZERO);
        assert_eq!(RetryPolicy::none().max_attempts(), 1);
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = RetryStats { retries: 2, giveups: 1 };
        a.absorb(RetryStats { retries: 3, giveups: 0 });
        assert_eq!(a, RetryStats { retries: 5, giveups: 1 });
    }
}
