//! Per-provider token-bucket rate limiting, driven by *simulation* time.
//!
//! Using the simulation clock (not wall time) keeps admission decisions a
//! pure function of the request sequence and their sim-timestamps, so a
//! replay at a different time compression sees the same accept/reject
//! pattern.

/// A token bucket: capacity `capacity` tokens, refilled continuously at
/// `refill_per_s` tokens per (simulated) second. Each admitted request
/// takes one token.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_s: f64,
    tokens: f64,
    last_s: f64,
}

impl TokenBucket {
    /// A bucket that starts full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive or `refill_per_s` is negative.
    #[must_use]
    pub fn new(capacity: f64, refill_per_s: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(refill_per_s >= 0.0, "refill rate must be non-negative");
        TokenBucket {
            capacity,
            refill_per_s,
            tokens: capacity,
            last_s: 0.0,
        }
    }

    /// Refill for the elapsed time and try to take one token. The clock
    /// must not move backwards (a stale `now_s` refills nothing).
    pub fn try_take(&mut self, now_s: f64) -> bool {
        let elapsed = (now_s - self.last_s).max(0.0);
        self.last_s = self.last_s.max(now_s);
        self.tokens = (self.tokens + elapsed * self.refill_per_s).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after the last refill instant).
    #[must_use]
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_up_to_capacity_then_rejects() {
        let mut bucket = TokenBucket::new(3.0, 0.1);
        assert!(bucket.try_take(0.0));
        assert!(bucket.try_take(0.0));
        assert!(bucket.try_take(0.0));
        assert!(!bucket.try_take(0.0), "bucket exhausted");
    }

    #[test]
    fn refills_over_time_and_caps_at_capacity() {
        let mut bucket = TokenBucket::new(2.0, 0.5); // 1 token / 2 s
        for _ in 0..2 {
            assert!(bucket.try_take(0.0));
        }
        assert!(!bucket.try_take(1.0), "only 0.5 tokens back");
        assert!(bucket.try_take(2.0), "1 token accrued by t=2");
        assert!(bucket.try_take(1000.0));
        assert!(bucket.try_take(1000.0), "capped at capacity 2, both spendable");
        assert!(!bucket.try_take(1000.0));
    }

    #[test]
    fn clock_never_runs_backwards() {
        let mut bucket = TokenBucket::new(1.0, 1.0);
        assert!(bucket.try_take(10.0));
        assert!(!bucket.try_take(5.0), "stale timestamp refills nothing");
        assert!(bucket.try_take(11.0), "refill resumes from the high-water mark");
    }

    #[test]
    fn zero_refill_is_a_fixed_budget() {
        let mut bucket = TokenBucket::new(2.0, 0.0);
        assert!(bucket.try_take(0.0));
        assert!(bucket.try_take(1e9));
        assert!(!bucket.try_take(1e12));
        assert_eq!(bucket.available(), 0.0);
    }
}
