//! The trace module round-trips a real simulated study: figures computed
//! from re-imported records match the originals exactly.

use qcs::cloud::trace::{read_records, write_records};
use qcs::cloud::JobOutcome;
use qcs::{Study, StudyConfig};

#[test]
fn study_trace_survives_export_import() {
    let study = Study::run(&StudyConfig::smoke());
    let records = &study.result().records;

    let mut buffer = Vec::new();
    write_records(&mut buffer, records).expect("export succeeds");
    let restored = read_records(buffer.as_slice()).expect("import succeeds");

    assert_eq!(&restored, records);

    // Recomputed headline statistics agree exactly.
    let queue_minutes = |rs: &[qcs::cloud::JobRecord]| -> Vec<f64> {
        let mut v: Vec<f64> = rs
            .iter()
            .filter(|r| r.is_study && r.outcome != JobOutcome::Cancelled)
            .map(|r| r.queue_time_s() / 60.0)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    };
    assert_eq!(queue_minutes(&restored), study.queue_times_sorted_min());
}

#[test]
fn trace_is_parseable_by_line_tools() {
    // The CSV must stay flat and line-oriented for external analysis.
    let study = Study::run(&StudyConfig::smoke());
    let mut buffer = Vec::new();
    write_records(&mut buffer, &study.result().records).expect("export succeeds");
    let text = String::from_utf8(buffer).expect("trace is utf-8");
    let mut lines = text.lines();
    let header = lines.next().expect("has header");
    let columns = header.split(',').count();
    assert_eq!(columns, 14);
    for line in lines {
        assert_eq!(line.split(',').count(), columns, "ragged row: {line}");
    }
}
