//! Queue-wait prediction (paper Recommendation ⑤: "research on predicting
//! queuing times with quantitative confidence levels ... are worth
//! pursuing").
//!
//! The estimator uses the observation chain the paper itself builds:
//! execution times are highly predictable (§VI-C), so the work ahead of a
//! job — pending jobs x expected service — is predictable too, and under
//! work-conserving scheduling the wait tracks the backlog.

use std::fmt;

use qcs_cloud::{JobOutcome, JobRecord};
use qcs_stats::{pearson, quantile};

/// Why a [`QueueWaitModel::fit`] could not produce a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueFitError {
    /// The record set contained no completed jobs — there is nothing to
    /// learn service times from.
    NoCompletedJobs,
}

impl fmt::Display for QueueFitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueFitError::NoCompletedJobs => {
                write!(f, "no completed jobs to fit a queue-wait model on")
            }
        }
    }
}

impl std::error::Error for QueueFitError {}

/// A backlog-based queue-wait estimator with empirical confidence bands.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueWaitModel {
    /// Learned mean service time per machine, seconds.
    mean_service_s: Vec<f64>,
    /// Fleet-wide mean service time, seconds — the fallback for machines
    /// the training set never saw (including indices past the end, which
    /// external traces routinely produce).
    fleet_mean_s: f64,
    /// Multiplicative confidence band `(p10, p90)` of `actual/predicted`,
    /// learned on the training set.
    band: (f64, f64),
}

impl QueueWaitModel {
    /// Fit from historical records: per-machine mean service time from
    /// completed jobs, plus the empirical error band of the backlog
    /// estimate. Machines with no data fall back to the fleet mean.
    ///
    /// The machine table grows to cover every machine index present in
    /// the records, even past `num_machines` — external traces carry
    /// indices our fleet descriptor never promised.
    ///
    /// # Errors
    ///
    /// [`QueueFitError::NoCompletedJobs`] if no completed jobs are
    /// provided.
    pub fn fit(records: &[&JobRecord], num_machines: usize) -> Result<Self, QueueFitError> {
        let completed: Vec<&&JobRecord> = records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Completed)
            .collect();
        if completed.is_empty() {
            return Err(QueueFitError::NoCompletedJobs);
        }

        let machines = completed
            .iter()
            .map(|r| r.machine + 1)
            .max()
            .unwrap_or(0)
            .max(num_machines);
        let mut sums = vec![0.0f64; machines];
        let mut counts = vec![0usize; machines];
        for r in &completed {
            sums[r.machine] += r.exec_time_s();
            counts[r.machine] += 1;
        }
        let fleet_mean = sums.iter().sum::<f64>() / completed.len() as f64;
        let mean_service_s: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { fleet_mean })
            .collect();

        // Empirical band of actual/predicted on jobs that actually waited.
        let mut ratios: Vec<f64> = completed
            .iter()
            .filter(|r| r.pending_at_submit > 0 && r.queue_time_s() > 0.0)
            .map(|r| {
                let predicted =
                    r.pending_at_submit as f64 * mean_service_s[r.machine];
                r.queue_time_s() / predicted.max(1e-9)
            })
            .collect();
        ratios.sort_by(f64::total_cmp);
        let band = if ratios.is_empty() {
            (1.0, 1.0)
        } else {
            (
                quantile(&ratios, 0.10).unwrap_or(1.0).max(1e-3),
                quantile(&ratios, 0.90).unwrap_or(1.0).max(1e-3),
            )
        };
        Ok(QueueWaitModel {
            mean_service_s,
            fleet_mean_s: fleet_mean,
            band,
        })
    }

    /// Point estimate of the wait for a job submitted to `machine` with
    /// `pending` jobs ahead of it, seconds. Machines the model never saw
    /// (index past the learned table) use the fleet mean — no panic.
    #[must_use]
    pub fn predict_wait_s(&self, machine: usize, pending: usize) -> f64 {
        pending as f64 * self.mean_service_s(machine)
    }

    /// The 10–90 % confidence interval around a point estimate, seconds
    /// (the paper's "quantitative confidence levels").
    #[must_use]
    pub fn confidence_interval_s(&self, machine: usize, pending: usize) -> (f64, f64) {
        let point = self.predict_wait_s(machine, pending);
        (point * self.band.0, point * self.band.1)
    }

    /// Learned mean service time of a machine, seconds; the fleet mean
    /// for machines outside the learned table.
    #[must_use]
    pub fn mean_service_s(&self, machine: usize) -> f64 {
        self.mean_service_s
            .get(machine)
            .copied()
            .unwrap_or(self.fleet_mean_s)
    }
}

/// Evaluation of a [`QueueWaitModel`] on held-out records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuePredictionReport {
    /// Jobs evaluated (waited, completed).
    pub jobs: usize,
    /// Pearson correlation of predicted vs actual waits.
    pub correlation: f64,
    /// Median absolute error, minutes.
    pub median_abs_error_min: f64,
    /// Fraction of actual waits inside the model's 10–90 % band.
    pub band_coverage: f64,
}

/// Evaluate a fitted model on records (typically a held-out split).
///
/// Only completed jobs that actually waited behind someone are scored —
/// zero-wait jobs are trivially predictable and would inflate the metrics.
/// An empty scored set has defined zero-job semantics: every metric is
/// `0.0` (never NaN), so reports aggregate and serialize cleanly.
#[must_use]
pub fn evaluate_queue_prediction(
    model: &QueueWaitModel,
    records: &[&JobRecord],
) -> QueuePredictionReport {
    let scored: Vec<&&JobRecord> = records
        .iter()
        .filter(|r| {
            r.outcome == JobOutcome::Completed
                && r.pending_at_submit > 0
                && r.queue_time_s() > 0.0
        })
        .collect();
    let predicted: Vec<f64> = scored
        .iter()
        .map(|r| model.predict_wait_s(r.machine, r.pending_at_submit))
        .collect();
    let actual: Vec<f64> = scored.iter().map(|r| r.queue_time_s()).collect();
    let mut abs_err: Vec<f64> = predicted
        .iter()
        .zip(&actual)
        .map(|(p, a)| (p - a).abs() / 60.0)
        .collect();
    abs_err.sort_by(f64::total_cmp);
    let in_band = scored
        .iter()
        .zip(&actual)
        .filter(|(r, &a)| {
            let (lo, hi) = model.confidence_interval_s(r.machine, r.pending_at_submit);
            (lo..=hi).contains(&a)
        })
        .count();
    QueuePredictionReport {
        jobs: scored.len(),
        correlation: pearson(&predicted, &actual),
        median_abs_error_min: quantile(&abs_err, 0.5).unwrap_or(0.0),
        band_coverage: if scored.is_empty() {
            0.0
        } else {
            in_band as f64 / scored.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, machine: usize, pending: usize, exec_s: f64, wait_s: f64) -> JobRecord {
        JobRecord {
            id,
            provider: 0,
            machine,
            circuits: 10,
            shots: 1024,
            mean_width: 3.0,
            mean_depth: 15.0,
            is_study: true,
            submit_s: 0.0,
            start_s: wait_s,
            end_s: wait_s + exec_s,
            outcome: JobOutcome::Completed,
            pending_at_submit: pending,
            crossed_calibration: false,
        }
    }

    /// Records where wait = pending * 100s exactly, service = 100s.
    fn ideal_records(n: usize) -> Vec<JobRecord> {
        (0..n)
            .map(|i| record(i as u64, i % 2, i % 7 + 1, 100.0, (i % 7 + 1) as f64 * 100.0))
            .collect()
    }

    #[test]
    fn fits_mean_service() {
        let records = ideal_records(50);
        let refs: Vec<&JobRecord> = records.iter().collect();
        let model = QueueWaitModel::fit(&refs, 3).expect("fit");
        assert!((model.mean_service_s(0) - 100.0).abs() < 1e-9);
        assert!((model.mean_service_s(1) - 100.0).abs() < 1e-9);
        // Machine 2 has no data: falls back to fleet mean.
        assert!((model.mean_service_s(2) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_backlog_predicts_perfectly() {
        let records = ideal_records(60);
        let refs: Vec<&JobRecord> = records.iter().collect();
        let model = QueueWaitModel::fit(&refs, 2).expect("fit");
        let report = evaluate_queue_prediction(&model, &refs);
        assert!(report.jobs > 0);
        assert!(report.correlation > 0.999, "corr {}", report.correlation);
        assert!(report.median_abs_error_min < 1e-6);
        assert!(report.band_coverage > 0.99);
    }

    #[test]
    fn confidence_band_orders() {
        let records = ideal_records(30);
        let refs: Vec<&JobRecord> = records.iter().collect();
        let model = QueueWaitModel::fit(&refs, 2).expect("fit");
        let (lo, hi) = model.confidence_interval_s(0, 5);
        assert!(lo <= hi);
        assert!(lo > 0.0);
        assert_eq!(model.predict_wait_s(0, 0), 0.0);
    }

    #[test]
    fn noisy_waits_reduce_coverage_gracefully() {
        // Waits 2x the backlog estimate: correlation stays perfect,
        // coverage depends on the learned band (which adapts).
        let records: Vec<JobRecord> = (0..40)
            .map(|i| {
                record(
                    i as u64,
                    0,
                    (i % 5 + 1) as usize,
                    100.0,
                    (i % 5 + 1) as f64 * 200.0,
                )
            })
            .collect();
        let refs: Vec<&JobRecord> = records.iter().collect();
        let model = QueueWaitModel::fit(&refs, 1).expect("fit");
        let report = evaluate_queue_prediction(&model, &refs);
        assert!(report.correlation > 0.999);
        // The band was learned around the 2x ratio, so coverage is high.
        assert!(report.band_coverage > 0.9, "coverage {}", report.band_coverage);
    }

    #[test]
    fn empty_fit_is_a_typed_error_not_a_panic() {
        assert_eq!(
            QueueWaitModel::fit(&[], 1).unwrap_err(),
            QueueFitError::NoCompletedJobs
        );
        // Records present but none completed count as empty too.
        let mut r = record(0, 0, 1, 100.0, 100.0);
        r.outcome = JobOutcome::Cancelled;
        assert_eq!(
            QueueWaitModel::fit(&[&r], 1).unwrap_err(),
            QueueFitError::NoCompletedJobs
        );
    }

    #[test]
    fn machine_index_past_num_machines_grows_the_table() {
        // An external-trace shape: the caller promises 2 machines but a
        // record names machine 7. Used to index out of bounds in fit().
        let mut records = ideal_records(20);
        records.push(record(99, 7, 3, 40.0, 120.0));
        let refs: Vec<&JobRecord> = records.iter().collect();
        let model = QueueWaitModel::fit(&refs, 2).expect("fit");
        assert!((model.mean_service_s(7) - 40.0).abs() < 1e-9);
        assert!((model.predict_wait_s(7, 3) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn prediction_past_learned_table_uses_fleet_mean() {
        // Used to index out of bounds in predict_wait_s().
        let records = ideal_records(20);
        let refs: Vec<&JobRecord> = records.iter().collect();
        let model = QueueWaitModel::fit(&refs, 2).expect("fit");
        // Fleet mean service is 100 s, so machine 42 predicts from it.
        assert!((model.mean_service_s(42) - 100.0).abs() < 1e-9);
        assert!((model.predict_wait_s(42, 2) - 200.0).abs() < 1e-9);
        let (lo, hi) = model.confidence_interval_s(42, 2);
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
    }

    #[test]
    fn empty_scored_set_reports_zeros_not_nan() {
        // A model fitted on real data, evaluated on records that all fail
        // the scoring filter (zero wait): every metric must be 0.0.
        let records = ideal_records(20);
        let refs: Vec<&JobRecord> = records.iter().collect();
        let model = QueueWaitModel::fit(&refs, 2).expect("fit");
        let unscored: Vec<JobRecord> =
            (0..5).map(|i| record(i, 0, 0, 100.0, 0.0)).collect();
        let unscored_refs: Vec<&JobRecord> = unscored.iter().collect();
        let report = evaluate_queue_prediction(&model, &unscored_refs);
        assert_eq!(report.jobs, 0);
        assert_eq!(report.correlation, 0.0);
        assert_eq!(report.median_abs_error_min, 0.0);
        assert_eq!(report.band_coverage, 0.0);
        assert!(!report.correlation.is_nan());
        assert!(!report.median_abs_error_min.is_nan());
    }
}
