//! Instruction scheduling: assigning start times and computing the
//! wall-clock duration of one shot of a circuit on a target.
//!
//! Durations follow superconducting-hardware conventions: `rz` is virtual
//! (zero duration, implemented as a frame change), `sx`/`x` take a fixed
//! pulse length, `cx` duration comes from the edge calibration, and
//! measurement is the long readout operation.

use qcs_circuit::{Circuit, Gate};

use crate::Target;

/// Duration constants for non-CX operations, nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationModel {
    /// Single-qubit pulse gates (sx, x, and parametric rotations when not
    /// basis-translated).
    pub single_qubit_ns: f64,
    /// Readout duration.
    pub measure_ns: f64,
    /// Reset duration.
    pub reset_ns: f64,
    /// Fallback CX duration when the target lacks edge calibration.
    pub default_cx_ns: f64,
}

impl Default for DurationModel {
    fn default() -> Self {
        DurationModel {
            single_qubit_ns: 35.0,
            measure_ns: 4000.0,
            reset_ns: 1000.0,
            default_cx_ns: 350.0,
        }
    }
}

/// An ASAP-scheduled circuit: per-instruction start times plus the total
/// single-shot duration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledCircuit {
    /// Start time of each instruction (ns), aligned with the circuit's
    /// instruction order.
    pub start_times_ns: Vec<f64>,
    /// Total duration of one shot, nanoseconds.
    pub duration_ns: f64,
}

impl ScheduledCircuit {
    /// Total duration in microseconds.
    #[must_use]
    pub fn duration_us(&self) -> f64 {
        self.duration_ns / 1000.0
    }
}

/// Duration of a single instruction on the target, nanoseconds.
#[must_use]
pub fn instruction_duration_ns(gate: &Gate, qubits: &[usize], target: &Target, model: &DurationModel) -> f64 {
    match gate {
        Gate::Barrier | Gate::Id => 0.0,
        Gate::Rz(_) => 0.0, // virtual Z
        Gate::Measure => model.measure_ns,
        Gate::Reset => model.reset_ns,
        g if g.is_two_qubit() => {
            let base = target
                .snapshot()
                .edge(qubits[0], qubits[1])
                .map_or(model.default_cx_ns, |e| e.cx_duration_ns);
            // A swap is three CX pulses back-to-back.
            if *g == Gate::Swap {
                3.0 * base
            } else {
                base
            }
        }
        _ => model.single_qubit_ns,
    }
}

/// ASAP-schedule `circuit` on `target` with the default duration model.
#[must_use]
pub fn schedule_asap(circuit: &Circuit, target: &Target) -> ScheduledCircuit {
    schedule_asap_with(circuit, target, &DurationModel::default())
}

/// ASAP-schedule with an explicit duration model.
///
/// # Panics
///
/// Panics if the circuit is wider than the target.
#[must_use]
pub fn schedule_asap_with(
    circuit: &Circuit,
    target: &Target,
    model: &DurationModel,
) -> ScheduledCircuit {
    assert!(
        circuit.num_qubits() <= target.num_qubits(),
        "circuit wider than target"
    );
    let mut qubit_free = vec![0.0f64; circuit.num_qubits().max(1)];
    let mut starts = Vec::with_capacity(circuit.instructions().len());
    let mut total = 0.0f64;
    for inst in circuit.instructions() {
        let qs: Vec<usize> = inst.qubits.iter().map(|q| q.index()).collect();
        let start = qs
            .iter()
            .map(|&q| qubit_free[q])
            .fold(0.0f64, f64::max);
        let dur = instruction_duration_ns(&inst.gate, &qs, target, model);
        let end = start + dur;
        for &q in &qs {
            qubit_free[q] = end;
        }
        starts.push(start);
        total = total.max(end);
    }
    ScheduledCircuit {
        start_times_ns: starts,
        duration_ns: total,
    }
}

/// ALAP-schedule `circuit` on `target` with the default duration model:
/// every instruction starts as *late* as possible without extending the
/// ASAP makespan. Idle time is pushed to the front of each wire, which
/// minimizes the decoherence window between a qubit's last gate and its
/// measurement (the reason hardware schedulers prefer ALAP).
#[must_use]
pub fn schedule_alap(circuit: &Circuit, target: &Target) -> ScheduledCircuit {
    schedule_alap_with(circuit, target, &DurationModel::default())
}

/// ALAP-schedule with an explicit duration model.
///
/// # Panics
///
/// Panics if the circuit is wider than the target.
#[must_use]
pub fn schedule_alap_with(
    circuit: &Circuit,
    target: &Target,
    model: &DurationModel,
) -> ScheduledCircuit {
    assert!(
        circuit.num_qubits() <= target.num_qubits(),
        "circuit wider than target"
    );
    let asap = schedule_asap_with(circuit, target, model);
    let makespan = asap.duration_ns;
    // Walk backwards: each instruction ends as late as its qubits allow.
    let mut qubit_busy_from = vec![makespan; circuit.num_qubits().max(1)];
    let mut starts = vec![0.0f64; circuit.instructions().len()];
    for (idx, inst) in circuit.instructions().iter().enumerate().rev() {
        let qs: Vec<usize> = inst.qubits.iter().map(|q| q.index()).collect();
        let end = qs
            .iter()
            .map(|&q| qubit_busy_from[q])
            .fold(makespan, f64::min);
        let dur = instruction_duration_ns(&inst.gate, &qs, target, model);
        let start = end - dur;
        for &q in &qs {
            qubit_busy_from[q] = start;
        }
        starts[idx] = start;
    }
    ScheduledCircuit {
        start_times_ns: starts,
        duration_ns: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::Circuit;
    use qcs_topology::families;

    fn target() -> Target {
        Target::noiseless("line", families::line(5))
    }

    #[test]
    fn rz_is_free() {
        let mut c = Circuit::new(1);
        c.rz(1.0, 0).rz(2.0, 0);
        let s = schedule_asap(&c, &target());
        assert_eq!(s.duration_ns, 0.0);
    }

    #[test]
    fn sequential_gates_accumulate() {
        let mut c = Circuit::new(1);
        c.x(0).x(0);
        let s = schedule_asap(&c, &target());
        assert!((s.duration_ns - 70.0).abs() < 1e-9);
        assert_eq!(s.start_times_ns, vec![0.0, 35.0]);
    }

    #[test]
    fn parallel_gates_overlap() {
        let mut c = Circuit::new(2);
        c.x(0).x(1);
        let s = schedule_asap(&c, &target());
        assert!((s.duration_ns - 35.0).abs() < 1e-9);
    }

    #[test]
    fn cx_uses_edge_duration() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let s = schedule_asap(&c, &target());
        assert!((s.duration_ns - 300.0).abs() < 1e-9); // noiseless target edge duration
    }

    #[test]
    fn swap_is_three_cx_long() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let s = schedule_asap(&c, &target());
        assert!((s.duration_ns - 900.0).abs() < 1e-9);
    }

    #[test]
    fn measurement_dominates_short_circuits() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let s = schedule_asap(&c, &target());
        assert!(s.duration_ns > 4000.0);
        assert!(s.duration_us() > 4.0);
    }

    #[test]
    fn alap_matches_asap_makespan() {
        let mut c = Circuit::new(3);
        c.x(0).cx(0, 1).x(2).measure_all();
        let t = target();
        let asap = schedule_asap(&c, &t);
        let alap = schedule_alap(&c, &t);
        assert!((asap.duration_ns - alap.duration_ns).abs() < 1e-9);
        // Every ALAP start is at or after its ASAP start.
        for (a, l) in asap.start_times_ns.iter().zip(&alap.start_times_ns) {
            assert!(l >= a, "alap {l} before asap {a}");
        }
    }

    #[test]
    fn alap_delays_isolated_gates() {
        // x(2) has no successors and sits beside a longer CX chain: ASAP
        // puts it at t=0, ALAP pushes it to the end of the schedule.
        let mut c = Circuit::new(3);
        c.x(2).cx(0, 1);
        let t = target();
        let asap = schedule_asap(&c, &t);
        let alap = schedule_alap(&c, &t);
        assert_eq!(asap.start_times_ns[0], 0.0);
        assert!((alap.start_times_ns[0] - 265.0).abs() < 1e-9);
    }

    #[test]
    fn alap_respects_dependencies() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1).x(1);
        let t = target();
        let alap = schedule_alap(&c, &t);
        // cx must still start after x(0) finishes and before x(1).
        assert!(alap.start_times_ns[1] >= alap.start_times_ns[0] + 35.0 - 1e-9);
        assert!(alap.start_times_ns[2] >= alap.start_times_ns[1] + 300.0 - 1e-9);
    }

    #[test]
    fn dependencies_respected() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1).x(1);
        let s = schedule_asap(&c, &target());
        // cx starts after x(0); x(1) after cx.
        assert!((s.start_times_ns[1] - 35.0).abs() < 1e-9);
        assert!((s.start_times_ns[2] - 335.0).abs() < 1e-9);
    }
}
