//! Deterministic train/test splitting.

/// Split indices `0..n` into `(train, test)` with the given train fraction,
/// using a seeded Fisher–Yates shuffle (the paper uses a 70/30 split).
///
/// # Panics
///
/// Panics if `train_fraction` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use qcs_stats::train_test_split;
///
/// let (train, test) = train_test_split(10, 0.7, 42);
/// assert_eq!(train.len(), 7);
/// assert_eq!(test.len(), 3);
/// ```
#[must_use]
pub fn train_test_split(n: usize, train_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train fraction must be in [0, 1]"
    );
    let mut indices: Vec<usize> = (0..n).collect();
    // SplitMix64-driven Fisher-Yates (no external RNG needed here).
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        indices.swap(i, j);
    }
    let cut = (n as f64 * train_fraction).round() as usize;
    let test = indices.split_off(cut.min(n));
    (indices, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_fraction() {
        let (train, test) = train_test_split(100, 0.7, 1);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
    }

    #[test]
    fn covers_all_indices_once() {
        let (train, test) = train_test_split(50, 0.5, 3);
        let mut all: Vec<usize> = train.into_iter().chain(test).collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(train_test_split(20, 0.6, 7), train_test_split(20, 0.6, 7));
        assert_ne!(
            train_test_split(20, 0.6, 7).0,
            train_test_split(20, 0.6, 8).0
        );
    }

    #[test]
    fn degenerate_fractions() {
        let (train, test) = train_test_split(5, 0.0, 0);
        assert!(train.is_empty());
        assert_eq!(test.len(), 5);
        let (train, test) = train_test_split(5, 1.0, 0);
        assert_eq!(train.len(), 5);
        assert!(test.is_empty());
    }

    #[test]
    fn empty_input() {
        let (train, test) = train_test_split(0, 0.7, 0);
        assert!(train.is_empty() && test.is_empty());
    }
}
