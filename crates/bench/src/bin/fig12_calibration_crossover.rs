//! Fig 12: calibration crossovers. (a) fraction of jobs compiled against
//! one calibration but executed after another (paper estimate: >20%);
//! (b) the same circuit gets a different noise-aware mapping on
//! consecutive calibration days.

use qcs::experiments::calibration_layout_shift;
use qcs::machine::Fleet;
use qcs_bench::{study_from_args, write_csv};

fn main() {
    let study = study_from_args();
    let crossover = study.calibration_crossover_fraction();
    println!("Fig 12a — calibration crossovers");
    println!(
        "  {:.1}% of executed jobs crossed a calibration boundary (paper coarse estimate: >20%)",
        100.0 * crossover
    );
    write_csv(
        "fig12a_crossover.csv",
        "crossover_fraction",
        vec![format!("{crossover}")],
    );

    println!("\nFig 12b — noise-aware layout across consecutive calibrations (toronto, QFT-4)");
    let fleet = Fleet::ibm_like();
    let machine = fleet.get("toronto").expect("toronto in fleet");
    let mut shifts = 0usize;
    let days = 30u64;
    for day in 0..days {
        let (before, after) =
            calibration_layout_shift(machine, 4, day).expect("layout succeeds");
        if before != after {
            shifts += 1;
            if shifts <= 3 {
                println!(
                    "  day {day:>2} -> {day_next:>2}: logical->physical {:?} => {:?}",
                    before.as_slice(),
                    after.as_slice(),
                    day_next = day + 1
                );
            }
        }
    }
    println!(
        "  layout changed across {shifts}/{days} consecutive calibration pairs"
    );
    write_csv(
        "fig12b_layout_shift.csv",
        "days_tested,layout_shifts",
        vec![format!("{days},{shifts}")],
    );
}
