//! # qcs-calibration
//!
//! The machine calibration model for the `qcs` quantum-cloud study:
//! per-qubit/per-edge calibrated parameters ([`CalibrationSnapshot`]), a
//! deterministic generative [`NoiseProfile`] with spatial and temporal
//! variation plus intra-day drift, and the daily [`CalibrationSchedule`]
//! behind the paper's calibration-crossover analysis (Fig 12).
//!
//! # Examples
//!
//! ```
//! use qcs_calibration::{CalibrationSchedule, NoiseProfile};
//! use qcs_topology::families;
//!
//! let profile = NoiseProfile::with_seed(42);
//! let graph = families::ibm_falcon_27q();
//! let today = profile.snapshot(&graph, 0);
//! let tomorrow = profile.snapshot(&graph, 1);
//! assert_ne!(today, tomorrow); // calibrations differ day to day
//!
//! let schedule = CalibrationSchedule::default();
//! assert!(schedule.crossover(23.0, 27.0)); // overnight queue goes stale
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod distributions;
mod profile;
mod schedule;
mod snapshot;

pub use profile::NoiseProfile;
pub use schedule::CalibrationSchedule;
pub use snapshot::{CalibrationSnapshot, EdgeCalibration, QubitCalibration};
