//! Criterion benchmarks of the multi-backend simulator engines, each on
//! its native domain: the stabilizer tableau on machine-wide Clifford
//! POS circuits (30q and the fleet-maximum 65q — both far beyond the
//! dense amplitude array), the sparse statevector on a 30q GHZ-like
//! two-amplitude state, and the dense SIMD path on the 16q QFT it still
//! owns. `backends_pos/stabilizer_30q` is the bench-smoke CI point: a
//! 30-qubit Clifford run must stay cheap enough that routing wide
//! Cliffords away from the dense engine is always a win.

use criterion::{criterion_group, criterion_main, Criterion};
use qcs_calibration::{CalibrationSnapshot, NoiseProfile};
use qcs_sim::{
    clifford_pos_circuit, qft_pos_circuit, BackendChoice, BackendKind, NoisySimulator,
};
use qcs_topology::families;

fn snapshot(width: usize) -> CalibrationSnapshot {
    NoiseProfile::with_seed(7).snapshot(&families::complete(width), 0)
}

fn simulator(backend: BackendKind) -> NoisySimulator {
    let sim = NoisySimulator {
        trajectories: 4,
        seed: 7,
        ..NoisySimulator::default()
    };
    sim.with_threads(1)
        .with_backend(BackendChoice::Force(backend))
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backends_pos");

    // Stabilizer tableau: the whole-machine Clifford GHZ-echo benchmark
    // at widths the dense engine cannot represent (2^30 and 2^65 amps).
    for width in [30usize, 65] {
        let circuit = clifford_pos_circuit(width);
        let snap = snapshot(width);
        let sim = simulator(BackendKind::Stabilizer);
        group.bench_function(format!("stabilizer_{width}q").as_str(), |b| {
            b.iter(|| sim.run(&circuit, &snap, 1024).unwrap());
        });
    }

    // Sparse statevector: a 30q GHZ-like circuit holds 2 of 2^30
    // amplitudes; the map-keyed engine runs it in microseconds.
    {
        let width = 30;
        let mut circuit = qcs_circuit::Circuit::new(width);
        circuit.h(0);
        for q in 1..width {
            circuit.cx(q - 1, q);
        }
        circuit.t(width - 1); // non-Clifford tail: this is sparse's domain
        circuit.measure_all();
        let snap = snapshot(width);
        let sim = simulator(BackendKind::Sparse);
        group.bench_function("sparse_30q_ghz", |b| {
            b.iter(|| sim.run(&circuit, &snap, 1024).unwrap());
        });
    }

    // Dense SIMD path: the 16q QFT POS benchmark it keeps owning (QFT
    // branches everywhere, so neither special-purpose engine applies).
    {
        let width = 16;
        let circuit = qft_pos_circuit(width);
        let snap = snapshot(width);
        let sim = simulator(BackendKind::Dense);
        group.bench_function("dense_16q_qft", |b| {
            b.iter(|| sim.run(&circuit, &snap, 1024).unwrap());
        });
    }

    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
