//! The [`Machine`] model: topology + calibration behaviour + execution
//! cost characteristics + cloud access class.

use std::fmt;

use qcs_calibration::{CalibrationSchedule, CalibrationSnapshot, NoiseProfile};
use qcs_topology::CouplingGraph;

/// Cloud access class of a machine.
///
/// Public machines are open to anyone with an account and see far higher
/// demand; privileged (paid / hub) machines require membership (paper §V-A:
/// "the average pending jobs are highest on a public machine").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Open-access machine.
    Public,
    /// Paid / hub-members-only machine.
    Privileged,
}

impl Access {
    /// Whether this is [`Access::Public`].
    #[must_use]
    pub fn is_public(self) -> bool {
        self == Access::Public
    }
}

/// Processor generation, loosely following IBM's family names. Determines
/// baseline gate quality and speed in the fleet construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Generation {
    /// Single-qubit early devices (Armonk).
    Canary,
    /// 5-qubit devices.
    Sparrow,
    /// 7–16 qubit devices.
    Falcon,
    /// 27-qubit devices.
    FalconR4,
    /// 65-qubit devices (Manhattan, Brooklyn).
    Hummingbird,
}

/// Constants of the machine's job execution cost model.
///
/// The paper finds (§VI) that NISQ job runtimes are dominated by machine
/// overheads — per-job setup, per-circuit loading, and per-shot repetition
/// delay — rather than by circuit contents. This model reflects that: the
/// circuit only contributes via its (small) duration per shot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionCostModel {
    /// Fixed per-job setup/teardown, seconds (grows with machine size).
    pub job_overhead_s: f64,
    /// Per-circuit program load & binding time, seconds.
    pub circuit_load_s: f64,
    /// Per-shot overhead (reset + repetition delay), microseconds.
    pub shot_overhead_us: f64,
    /// Average duration of one circuit layer (depth unit), microseconds.
    pub layer_time_us: f64,
}

impl ExecutionCostModel {
    /// Duration of executing one circuit of the given depth for `shots`
    /// repetitions, excluding per-job overhead. Seconds.
    #[must_use]
    pub fn circuit_time_s(&self, depth: usize, shots: u32) -> f64 {
        let per_shot_us = self.shot_overhead_us + depth as f64 * self.layer_time_us;
        self.circuit_load_s + f64::from(shots) * per_shot_us * 1e-6
    }

    /// Total wall time of a job whose batch contains circuits with the
    /// given `(depth, shots)` pairs. Seconds.
    #[must_use]
    pub fn job_time_s(&self, batch: &[(usize, u32)]) -> f64 {
        self.job_overhead_s
            + batch
                .iter()
                .map(|&(depth, shots)| self.circuit_time_s(depth, shots))
                .sum::<f64>()
    }

    /// Wall time of a job of `circuits` identical circuits (a fast path for
    /// the cloud simulator, which models background jobs by batch summary).
    /// Seconds.
    #[must_use]
    pub fn job_time_uniform_s(&self, circuits: u32, depth: usize, shots: u32) -> f64 {
        self.job_overhead_s + f64::from(circuits) * self.circuit_time_s(depth, shots)
    }
}

/// A quantum machine in the cloud fleet.
///
/// # Examples
///
/// ```
/// use qcs_machine::Fleet;
///
/// let fleet = Fleet::ibm_like();
/// let manhattan = fleet.get("manhattan").unwrap();
/// assert_eq!(manhattan.num_qubits(), 65);
/// let snapshot = manhattan.snapshot_at(30.0); // hours since study start
/// assert!(snapshot.avg_cx_error() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    name: String,
    topology: CouplingGraph,
    profile: NoiseProfile,
    schedule: CalibrationSchedule,
    access: Access,
    generation: Generation,
    cost: ExecutionCostModel,
    max_batch_size: usize,
    max_shots: u32,
}

impl Machine {
    /// Assemble a machine from its parts. Prefer [`crate::Fleet::ibm_like`]
    /// for the study fleet; this constructor is for custom machines.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        topology: CouplingGraph,
        profile: NoiseProfile,
        schedule: CalibrationSchedule,
        access: Access,
        generation: Generation,
        cost: ExecutionCostModel,
    ) -> Self {
        Machine {
            name: name.into(),
            topology,
            profile,
            schedule,
            access,
            generation,
            cost,
            max_batch_size: 900,
            max_shots: 8192,
        }
    }

    /// The machine's name (lowercase, e.g. `"manhattan"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }

    /// The coupling topology.
    #[must_use]
    pub fn topology(&self) -> &CouplingGraph {
        &self.topology
    }

    /// The generative noise profile.
    #[must_use]
    pub fn profile(&self) -> &NoiseProfile {
        &self.profile
    }

    /// The calibration schedule.
    #[must_use]
    pub fn schedule(&self) -> &CalibrationSchedule {
        &self.schedule
    }

    /// Cloud access class.
    #[must_use]
    pub fn access(&self) -> Access {
        self.access
    }

    /// Processor generation.
    #[must_use]
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// The execution cost model.
    #[must_use]
    pub fn cost_model(&self) -> &ExecutionCostModel {
        &self.cost
    }

    /// Maximum circuits per job (IBM allows ~900).
    #[must_use]
    pub fn max_batch_size(&self) -> usize {
        self.max_batch_size
    }

    /// Maximum shots per circuit (IBM allows 8192).
    #[must_use]
    pub fn max_shots(&self) -> u32 {
        self.max_shots
    }

    /// The calibration snapshot in effect at `t_hours` since study start,
    /// including intra-day drift.
    #[must_use]
    pub fn snapshot_at(&self, t_hours: f64) -> CalibrationSnapshot {
        let cycle = self.schedule.cycle_at(t_hours);
        let age = self.schedule.hours_since_calibration(t_hours);
        self.profile.drifted_snapshot(&self.topology, cycle, age)
    }

    /// The fresh (undrifted) snapshot of the cycle in effect at `t_hours`.
    #[must_use]
    pub fn fresh_snapshot_at(&self, t_hours: f64) -> CalibrationSnapshot {
        let cycle = self.schedule.cycle_at(t_hours);
        self.profile.snapshot(&self.topology, cycle)
    }

    /// Total job execution time for a batch of `(depth, shots)` circuits.
    /// Seconds.
    #[must_use]
    pub fn job_time_s(&self, batch: &[(usize, u32)]) -> f64 {
        self.cost.job_time_s(batch)
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}q, {:?}, {:?})",
            self.name,
            self.num_qubits(),
            self.generation,
            self.access
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_topology::families;

    fn toy_machine() -> Machine {
        Machine::new(
            "toy",
            families::line(5),
            NoiseProfile::with_seed(1),
            CalibrationSchedule::default(),
            Access::Public,
            Generation::Sparrow,
            ExecutionCostModel {
                job_overhead_s: 4.0,
                circuit_load_s: 0.02,
                shot_overhead_us: 250.0,
                layer_time_us: 0.3,
            },
        )
    }

    #[test]
    fn accessors() {
        let m = toy_machine();
        assert_eq!(m.name(), "toy");
        assert_eq!(m.num_qubits(), 5);
        assert!(m.access().is_public());
        assert_eq!(m.max_batch_size(), 900);
        assert_eq!(m.max_shots(), 8192);
        assert!(m.to_string().contains("5q"));
    }

    #[test]
    fn job_time_scales_with_batch() {
        let m = toy_machine();
        let one = m.job_time_s(&[(10, 1024)]);
        let five = m.job_time_s(&[(10, 1024); 5]);
        // 5 circuits take ~5x the per-circuit time but share job overhead.
        assert!(five > one);
        assert!(five < 5.0 * one);
        let per_circuit = m.cost_model().circuit_time_s(10, 1024);
        assert!((five - (4.0 + 5.0 * per_circuit)).abs() < 1e-9);
    }

    #[test]
    fn shots_dominate_circuit_time() {
        let m = toy_machine();
        let few = m.cost_model().circuit_time_s(10, 100);
        let many = m.cost_model().circuit_time_s(10, 8192);
        assert!(many > 10.0 * few);
        // Per paper: per-circuit time stays well under 0.1 min even at
        // max shots for NISQ-depth circuits.
        assert!(many < 6.0, "circuit time {many}s");
    }

    #[test]
    fn depth_has_minor_effect() {
        let m = toy_machine();
        let shallow = m.cost_model().circuit_time_s(5, 4096);
        let deep = m.cost_model().circuit_time_s(200, 4096);
        // Overheads dominate: 40x depth -> well under 2x time.
        assert!(deep / shallow < 1.5);
        assert!(deep > shallow);
    }

    #[test]
    fn snapshot_at_is_deterministic_and_drifts() {
        let m = toy_machine();
        assert_eq!(m.snapshot_at(30.0), m.snapshot_at(30.0));
        let fresh = m.fresh_snapshot_at(30.0);
        let drifted = m.snapshot_at(30.0);
        // 30h is mid-cycle; drifted errors must be >= fresh errors.
        assert!(drifted.avg_cx_error() >= fresh.avg_cx_error());
    }

    #[test]
    fn snapshot_changes_across_calibration() {
        let m = toy_machine();
        let before = m.fresh_snapshot_at(1.0); // cycle 0
        let after = m.fresh_snapshot_at(3.0); // cycle 1 (cal at 01:30)
        assert_ne!(before, after);
    }
}
