//! Fig 13: execution-time distribution per machine (paper: sub-minute to
//! 15+ minutes; larger machines run slower).

use qcs_bench::{study_from_args, write_csv};

fn main() {
    let study = study_from_args();
    let violins = study.exec_time_by_machine();
    println!("Fig 13 — run time by machine (minutes)");
    println!(
        "  {:<12} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "machine", "q1", "median", "q3", "mean", "max", "n"
    );
    for (name, v) in &violins {
        let s = v.summary;
        println!(
            "  {:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.1} {:>9}",
            name, s.q1, s.median, s.q3, s.mean, s.max, s.count
        );
    }
    write_csv(
        "fig13_runtime_by_machine.csv",
        "machine,q1_min,median_min,q3_min,mean_min,max_min,count",
        violins.iter().map(|(name, v)| {
            let s = v.summary;
            format!("{name},{},{},{},{},{},{}", s.q1, s.median, s.q3, s.mean, s.max, s.count)
        }),
    );
}
