//! Constant-memory aggregation of terminal job records.
//!
//! [`StreamingAggregates`] is the fold target of the
//! [`RecordSink::Streaming`](crate::RecordSink::Streaming) pipeline: every
//! terminal [`JobRecord`] passes through once and is reduced into O(1)
//! sketches ([`qcs_stats::StreamingSummary`], [`qcs_stats::P2Quantile`],
//! [`qcs_stats::ReservoirSample`]) plus an O(providers) executed-seconds
//! ledger, instead of being pushed onto
//! [`SimulationResult::records`](crate::SimulationResult::records). Memory
//! is independent of trace length, which is what lets a ≥10⁶-job campaign
//! run in a bounded footprint.
//!
//! The executed-seconds ledger doubles as the streaming side of the
//! cross-shard conservation audit: per provider, the sum of execution
//! intervals folded here must equal the fair-share queues' undecayed
//! `charged_raw` accumulators (the invariant
//! [`audit::check_fair_share_conservation`](crate::audit) checks record
//! by record on exact runs).

use qcs_stats::{P2Quantile, ReservoirSample, StreamingSummary};

use crate::{JobOutcome, JobRecord};

/// O(1)-memory roll-up of a stream of terminal [`JobRecord`]s.
///
/// Executed jobs (completed or errored) contribute queue-time and
/// exec-time statistics; cancelled jobs count only toward `folded` and the
/// cancellation tally. Queue-time tails get a dedicated P² p99 marker (the
/// paper's headline latency statistic) and seeded reservoirs retain raw
/// points for violin plots.
#[derive(Debug, Clone)]
pub struct StreamingAggregates {
    folded: u64,
    cancelled: u64,
    queue_time: StreamingSummary,
    exec_time: StreamingSummary,
    queue_time_p99: P2Quantile,
    queue_time_violin: ReservoirSample,
    exec_time_violin: ReservoirSample,
    executed_s_by_provider: Vec<f64>,
}

impl StreamingAggregates {
    /// Aggregates over `num_providers` providers, retaining at most
    /// `reservoir_capacity` raw points per metric, seeded for
    /// reproducibility.
    #[must_use]
    pub fn new(reservoir_capacity: usize, reservoir_seed: u64, num_providers: usize) -> Self {
        StreamingAggregates {
            folded: 0,
            cancelled: 0,
            queue_time: StreamingSummary::new(),
            exec_time: StreamingSummary::new(),
            queue_time_p99: P2Quantile::new(0.99),
            queue_time_violin: ReservoirSample::new(reservoir_capacity, reservoir_seed),
            // Decorrelate the two reservoirs' replacement choices.
            exec_time_violin: ReservoirSample::new(
                reservoir_capacity,
                reservoir_seed ^ 0x9E37_79B9_7F4A_7C15,
            ),
            executed_s_by_provider: vec![0.0; num_providers],
        }
    }

    /// Fold one terminal record.
    ///
    /// # Panics
    ///
    /// Panics if the record's provider is outside the configured provider
    /// count.
    pub fn fold(&mut self, record: &JobRecord) {
        self.folded += 1;
        if record.outcome == JobOutcome::Cancelled {
            self.cancelled += 1;
            return;
        }
        let queue_s = record.queue_time_s();
        let exec_s = record.exec_time_s();
        self.queue_time.push(queue_s);
        self.queue_time_p99.push(queue_s);
        self.queue_time_violin.push(queue_s);
        self.exec_time.push(exec_s);
        self.exec_time_violin.push(exec_s);
        self.executed_s_by_provider[record.provider as usize] += exec_s;
    }

    /// Total records folded (all outcomes).
    #[must_use]
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// Records folded with a cancelled outcome.
    #[must_use]
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Queue-time sketch over executed jobs (seconds).
    #[must_use]
    pub fn queue_time(&self) -> &StreamingSummary {
        &self.queue_time
    }

    /// Execution-time sketch over executed jobs (seconds).
    #[must_use]
    pub fn exec_time(&self) -> &StreamingSummary {
        &self.exec_time
    }

    /// P² estimate of the 99th-percentile queue time; `None` before any
    /// executed job.
    #[must_use]
    pub fn queue_time_p99(&self) -> Option<f64> {
        self.queue_time_p99.estimate()
    }

    /// Reservoir of raw queue times for violin/KDE rendering.
    #[must_use]
    pub fn queue_time_samples(&self) -> &[f64] {
        self.queue_time_violin.samples()
    }

    /// Reservoir of raw execution times for violin/KDE rendering.
    #[must_use]
    pub fn exec_time_samples(&self) -> &[f64] {
        self.exec_time_violin.samples()
    }

    /// Per-provider executed seconds: the streaming side of the
    /// charged-seconds conservation law (must match the fair-share
    /// `charged_raw` totals summed over the same machines).
    #[must_use]
    pub fn executed_seconds_by_provider(&self) -> &[f64] {
        &self.executed_s_by_provider
    }

    /// Executed seconds summed over providers.
    #[must_use]
    pub fn executed_seconds_total(&self) -> f64 {
        self.executed_s_by_provider.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, provider: u32, outcome: JobOutcome, queue_s: f64, exec_s: f64) -> JobRecord {
        JobRecord {
            id,
            provider,
            machine: 0,
            circuits: 2,
            shots: 1024,
            mean_width: 3.0,
            mean_depth: 10.0,
            is_study: true,
            submit_s: 100.0,
            start_s: 100.0 + queue_s,
            end_s: 100.0 + queue_s + exec_s,
            outcome,
            pending_at_submit: 0,
            crossed_calibration: false,
        }
    }

    #[test]
    fn folds_executed_jobs_only() {
        let mut agg = StreamingAggregates::new(32, 1, 4);
        agg.fold(&record(0, 1, JobOutcome::Completed, 10.0, 5.0));
        agg.fold(&record(1, 2, JobOutcome::Errored, 20.0, 3.0));
        agg.fold(&record(2, 1, JobOutcome::Cancelled, 30.0, 0.0));
        assert_eq!(agg.folded(), 3);
        assert_eq!(agg.cancelled(), 1);
        assert_eq!(agg.queue_time().moments().count(), 2);
        assert_eq!(agg.queue_time().moments().mean(), 15.0);
        assert_eq!(agg.exec_time().moments().mean(), 4.0);
        assert_eq!(agg.executed_seconds_by_provider(), &[0.0, 5.0, 3.0, 0.0]);
        assert_eq!(agg.executed_seconds_total(), 8.0);
        assert_eq!(agg.queue_time_samples(), &[10.0, 20.0]);
        assert_eq!(agg.exec_time_samples(), &[5.0, 3.0]);
        assert_eq!(
            agg.queue_time_p99(),
            qcs_stats::quantile(&[10.0, 20.0], 0.99),
            "exact below 5 samples"
        );
    }

    #[test]
    fn empty_aggregates() {
        let agg = StreamingAggregates::new(8, 0, 2);
        assert_eq!(agg.folded(), 0);
        assert_eq!(agg.queue_time_p99(), None);
        assert_eq!(agg.executed_seconds_total(), 0.0);
        assert!(agg.queue_time_samples().is_empty());
    }

    #[test]
    fn reservoirs_are_decorrelated_but_deterministic() {
        let run = || {
            let mut agg = StreamingAggregates::new(16, 9, 2);
            for i in 0..1000 {
                agg.fold(&record(i, 0, JobOutcome::Completed, i as f64, i as f64));
            }
            (
                agg.queue_time_samples().to_vec(),
                agg.exec_time_samples().to_vec(),
            )
        };
        let (q1, e1) = run();
        let (q2, e2) = run();
        assert_eq!(q1, q2);
        assert_eq!(e1, e2);
        // Identical inputs, different seeds: the reservoirs should not
        // shadow each other.
        assert_ne!(q1, e1);
    }
}
