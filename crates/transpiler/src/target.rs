//! Compilation targets: what the transpiler compiles *for*.

use qcs_calibration::{CalibrationSnapshot, EdgeCalibration, NoiseProfile, QubitCalibration};
use qcs_machine::Machine;
use qcs_topology::CouplingGraph;

/// A compilation target: a coupling topology plus the calibration snapshot
/// in effect at compile time.
///
/// Device-aware compilation is the root of the paper's staleness problem
/// (Fig 12): a `Target` captures *one* calibration state, and the circuit
/// compiled against it degrades when the machine is recalibrated before
/// execution.
///
/// # Examples
///
/// ```
/// use qcs_machine::Fleet;
/// use qcs_transpiler::Target;
///
/// let fleet = Fleet::ibm_like();
/// let target = Target::from_machine(fleet.get("casablanca").unwrap(), 10.0);
/// assert_eq!(target.num_qubits(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct Target {
    name: String,
    topology: CouplingGraph,
    snapshot: CalibrationSnapshot,
}

impl Target {
    /// Build a target from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not cover the topology.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        topology: CouplingGraph,
        snapshot: CalibrationSnapshot,
    ) -> Self {
        assert!(
            snapshot.covers(&topology),
            "snapshot does not cover topology"
        );
        Target {
            name: name.into(),
            topology,
            snapshot,
        }
    }

    /// Target a machine as calibrated (with drift) at `t_hours` since study
    /// start.
    #[must_use]
    pub fn from_machine(machine: &Machine, t_hours: f64) -> Self {
        Target {
            name: machine.name().to_string(),
            topology: machine.topology().clone(),
            snapshot: machine.snapshot_at(t_hours),
        }
    }

    /// A noiseless target over the given topology (for pure
    /// connectivity/compile-time experiments such as Fig 5).
    #[must_use]
    pub fn noiseless(name: impl Into<String>, topology: CouplingGraph) -> Self {
        let qubits = vec![
            QubitCalibration {
                t1_us: f64::INFINITY,
                t2_us: f64::INFINITY,
                single_qubit_error: 0.0,
                readout_error: 0.0,
            };
            topology.num_qubits()
        ];
        let edges = topology
            .edges()
            .iter()
            .map(|&e| {
                (
                    e,
                    EdgeCalibration {
                        cx_error: 0.0,
                        cx_duration_ns: 300.0,
                    },
                )
            })
            .collect();
        Target {
            name: name.into(),
            topology,
            snapshot: CalibrationSnapshot::new(0, qubits, edges),
        }
    }

    /// A uniformly-noisy synthetic target (handy in tests and benches).
    #[must_use]
    pub fn uniform(name: impl Into<String>, topology: CouplingGraph, seed: u64) -> Self {
        let snapshot = NoiseProfile::with_seed(seed).snapshot(&topology, 0);
        Target {
            name: name.into(),
            topology,
            snapshot,
        }
    }

    /// Target name (usually the machine name).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The coupling topology.
    #[must_use]
    pub fn topology(&self) -> &CouplingGraph {
        &self.topology
    }

    /// The calibration snapshot the compilation will optimize against.
    #[must_use]
    pub fn snapshot(&self) -> &CalibrationSnapshot {
        &self.snapshot
    }

    /// Number of physical qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }

    /// CX error of edge `(a, b)`, or a large penalty value if uncoupled
    /// (useful in scoring heuristics).
    #[must_use]
    pub fn cx_error_or(&self, a: usize, b: usize, default: f64) -> f64 {
        self.snapshot
            .edge(a, b)
            .map_or(default, |e| e.cx_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_machine::Fleet;
    use qcs_topology::families;

    #[test]
    fn from_machine_matches_size() {
        let fleet = Fleet::ibm_like();
        let t = Target::from_machine(fleet.get("toronto").unwrap(), 5.0);
        assert_eq!(t.num_qubits(), 27);
        assert_eq!(t.name(), "toronto");
        assert!(t.snapshot().covers(t.topology()));
    }

    #[test]
    fn noiseless_has_zero_errors() {
        let t = Target::noiseless("ideal", families::line(5));
        assert_eq!(t.snapshot().avg_cx_error(), 0.0);
        assert_eq!(t.snapshot().avg_readout_error(), 0.0);
    }

    #[test]
    fn uniform_is_seeded() {
        let a = Target::uniform("u", families::line(5), 1);
        let b = Target::uniform("u", families::line(5), 1);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn cx_error_or_default() {
        let t = Target::noiseless("ideal", families::line(3));
        assert_eq!(t.cx_error_or(0, 1, 9.0), 0.0);
        assert_eq!(t.cx_error_or(0, 2, 9.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "snapshot does not cover")]
    fn mismatched_snapshot_rejected() {
        let snap = NoiseProfile::with_seed(0).snapshot(&families::line(3), 0);
        let _ = Target::new("bad", families::line(4), snap);
    }
}
