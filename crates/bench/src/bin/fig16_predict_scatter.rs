//! Fig 16: predicted vs actual runtimes on individual machines (paper:
//! Manhattan tracks closely; Vigo correlates worst because its runtime
//! range is narrow).

use qcs_bench::{study_from_args, write_csv};

fn main() {
    let study = study_from_args();
    let prediction = study.prediction_study(42);
    println!("Fig 16 — predicted vs actual runtimes");
    // The best- and worst-correlated machines with enough data.
    let mut evals: Vec<_> = prediction
        .per_machine
        .iter()
        .filter(|e| e.test_jobs >= 8)
        .collect();
    evals.sort_by(|a, b| b.correlation.partial_cmp(&a.correlation).expect("finite"));
    for (label, eval) in [("best", evals.first()), ("worst", evals.last())] {
        let Some(eval) = eval else { continue };
        let name = study.machine_name(eval.machine);
        println!(
            "  {label}: {name} (corr {:.3}, {} test jobs)",
            eval.correlation, eval.test_jobs
        );
        for (actual, predicted) in eval.pairs.iter().take(8) {
            println!("    actual {:>8.1}s   predicted {:>8.1}s", actual, predicted);
        }
        write_csv(
            &format!("fig16_scatter_{name}.csv"),
            "actual_seconds,predicted_seconds",
            eval.pairs
                .iter()
                .map(|(a, p)| format!("{a},{p}")),
        );
    }
}
