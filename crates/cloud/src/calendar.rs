//! An indexed calendar (bucket) priority queue for DES events.
//!
//! [`Calendar`] replaces the two `BinaryHeap`s in the live event loop. It
//! orders entries by the pair `(time_s, seq)` — encoded as one `u128` key
//! so a single integer compare replaces a float `partial_cmp` plus a
//! sequence tie-break — and pops them in **exactly** the order a min-heap
//! on the same pairs would produce. `tests` and the calendar proptest in
//! `tests/properties.rs` pin that bit-identity over random `(time, seq)`
//! streams, including duplicate times and out-of-order pushes.
//!
//! The structure is R. Brown's calendar queue: a ring of buckets, each
//! covering `width_s` seconds of one "day"; an entry for day `d` lives in
//! bucket `d mod nbuckets`. The minimum is found by scanning forward from
//! the cursor day — under DES workloads the next event is almost always
//! within a bucket or two, so a pop touches O(1) entries instead of
//! sifting `log n` heap levels of payload. A full empty lap falls back to
//! a direct scan (sparse regimes stay correct, just not sublinear), and
//! the ring doubles and re-spreads itself whenever occupancy exceeds two
//! entries per bucket, re-estimating the bucket width from the live
//! entries' time span.

/// Entries per bucket (on average) that trigger a grow-and-respread.
const RESIZE_OCCUPANCY: usize = 2;
/// Initial ring size; must be a power of two.
const INITIAL_BUCKETS: usize = 16;

/// Monotone key encoding: orders exactly like `(time_s, seq)` under
/// `f64::total_cmp` on the time (the repo-wide sort convention). Shared
/// with the reference binary-heap engine so both engines compare the
/// *same* integers and cannot diverge on ordering.
#[inline]
pub(crate) fn key_of(time_s: f64, seq: u64) -> u128 {
    ((time_key(time_s) as u128) << 64) | u128::from(seq)
}

/// Order-preserving bijection from non-NaN `f64` to `u64` (the standard
/// sign-fold of the IEEE bit pattern, i.e. `total_cmp` order).
#[inline]
fn time_key(time_s: f64) -> u64 {
    let bits = time_s.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`time_key`], for recovering an entry's time at pop.
#[inline]
pub(crate) fn key_time(key: u128) -> f64 {
    let folded = (key >> 64) as u64;
    let bits = if folded >> 63 == 1 {
        folded & !(1 << 63)
    } else {
        !folded
    };
    f64::from_bits(bits)
}

#[derive(Debug, Clone)]
struct Entry<T> {
    key: u128,
    /// `floor(time / width)` under the current width — recomputed on
    /// resize. Entries are bucketed by `day % nbuckets`.
    day: u64,
    item: T,
}

/// A calendar (bucket) priority queue over `(time_s, seq)` keys.
///
/// Pop order is bit-identical to a binary min-heap over the same pairs;
/// see the [module docs](self).
#[derive(Debug, Clone)]
pub struct Calendar<T> {
    /// Ring of buckets; `buckets.len()` is a power of two.
    buckets: Vec<Vec<Entry<T>>>,
    /// Seconds of simulated time each bucket covers per lap.
    width_s: f64,
    /// Total live entries.
    len: usize,
    /// Cursor day: always ≤ the day of every live entry, so the forward
    /// scan in `locate_min` cannot pass the minimum.
    day: u64,
    /// Cached location `(bucket, slot)` of the current minimum, if known.
    /// Maintained on push (a smaller key takes over the cache; appends
    /// never move existing slots) and invalidated by every removal.
    cached_min: Option<(usize, usize)>,
}

impl<T> Default for Calendar<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Calendar<T> {
    /// An empty calendar.
    #[must_use]
    pub fn new() -> Self {
        Calendar {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            width_s: 1.0,
            len: 0,
            day: 0,
            cached_min: None,
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Day index of `time_s` under the current width. Negative times
    /// saturate to day 0 and +∞ to `u64::MAX`; ordering within a bucket
    /// is always by full key, so saturation only costs scan locality.
    #[inline]
    fn day_of(&self, time_s: f64) -> u64 {
        (time_s / self.width_s) as u64
    }

    #[inline]
    fn bucket_of(&self, day: u64) -> usize {
        (day & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Insert an entry. `seq` must be unique per calendar (the caller's
    /// monotone event counter) so keys are total.
    pub fn push(&mut self, time_s: f64, seq: u64, item: T) {
        debug_assert!(!time_s.is_nan(), "event times must not be NaN");
        if self.len + 1 > RESIZE_OCCUPANCY * self.buckets.len() {
            self.grow();
        }
        let key = key_of(time_s, seq);
        let day = self.day_of(time_s);
        if self.len == 0 || day < self.day {
            self.day = day;
        }
        let bucket = self.bucket_of(day);
        self.buckets[bucket].push(Entry { key, day, item });
        let slot = self.buckets[bucket].len() - 1;
        match self.cached_min {
            Some((cb, cs)) if self.buckets[cb][cs].key < key => {}
            _ if self.len == 0 => self.cached_min = Some((bucket, slot)),
            Some(_) => self.cached_min = Some((bucket, slot)),
            None => {}
        }
        self.len += 1;
    }

    /// The minimum entry's time, without removing it.
    pub fn peek_time(&mut self) -> Option<f64> {
        let (bucket, slot) = self.locate_min()?;
        Some(key_time(self.buckets[bucket][slot].key))
    }

    /// Remove and return the minimum entry as `(time_s, item)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let (bucket, slot) = self.locate_min()?;
        let entry = self.buckets[bucket].swap_remove(slot);
        self.len -= 1;
        self.day = entry.day;
        self.cached_min = None;
        self.maybe_shrink();
        Some((key_time(entry.key), entry.item))
    }

    /// Visit every live entry (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buckets.iter().flatten().map(|e| &e.item)
    }

    /// Remove and return the first entry (arbitrary scan order) matching
    /// `pred` — the cancel-before-arrival path. O(n).
    pub fn remove_first<F: FnMut(&T) -> bool>(&mut self, mut pred: F) -> Option<T> {
        for bucket in 0..self.buckets.len() {
            for slot in 0..self.buckets[bucket].len() {
                if pred(&self.buckets[bucket][slot].item) {
                    let entry = self.buckets[bucket].swap_remove(slot);
                    self.len -= 1;
                    self.cached_min = None;
                    self.maybe_shrink();
                    return Some(entry.item);
                }
            }
        }
        None
    }

    /// Find `(bucket, slot)` of the global minimum key.
    ///
    /// Scans forward one day at a time from the cursor: every entry of day
    /// `d` lives in bucket `d mod nbuckets`, and the cursor invariant
    /// (`self.day` ≤ every live entry's day) means the first day with any
    /// entry holds the minimum. After a full empty lap (the ring covers
    /// `nbuckets * width` seconds; sparser than that means the estimate
    /// is stale) fall back to a direct scan over all entries.
    fn locate_min(&mut self) -> Option<(usize, usize)> {
        if self.cached_min.is_some() {
            return self.cached_min;
        }
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len() as u64;
        let mut d = self.day;
        for _ in 0..nbuckets {
            let b = self.bucket_of(d);
            let mut best: Option<(usize, u128)> = None;
            for (slot, entry) in self.buckets[b].iter().enumerate() {
                if entry.day == d && best.is_none_or(|(_, k)| entry.key < k) {
                    best = Some((slot, entry.key));
                }
            }
            if let Some((slot, _)) = best {
                self.day = d;
                self.cached_min = Some((b, slot));
                return self.cached_min;
            }
            d = d.wrapping_add(1);
        }
        // Sparse fallback: direct search, then drop the cursor on the
        // minimum so the next scan starts from a live day.
        let mut best: Option<(usize, usize, u128, u64)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (slot, entry) in bucket.iter().enumerate() {
                if best.is_none_or(|(_, _, k, _)| entry.key < k) {
                    best = Some((b, slot, entry.key, entry.day));
                }
            }
        }
        let (b, slot, _, day) = best?;
        self.day = day;
        self.cached_min = Some((b, slot));
        self.cached_min
    }

    /// Double the ring and re-spread every entry under a bucket width
    /// re-estimated from the live entries' span (≈ 3 mean gaps, so a
    /// day's bucket holds a handful of entries).
    fn grow(&mut self) {
        self.rebuild((self.buckets.len() * 2).max(INITIAL_BUCKETS));
    }

    /// Halve the ring once occupancy falls below a quarter entry per
    /// bucket. Without this the ring only ever grows, and a drained
    /// calendar pays an `O(nbuckets)` empty-lap scan per pop near the
    /// tail of a run — the hysteresis gap (grow at 2/bucket, shrink at
    /// 1/4) keeps rebuilds amortized O(1) per operation.
    fn maybe_shrink(&mut self) {
        if self.buckets.len() > INITIAL_BUCKETS && self.len * 4 < self.buckets.len() {
            self.rebuild((self.buckets.len() / 2).max(INITIAL_BUCKETS));
        }
    }

    /// Re-spread every entry over `nbuckets` buckets under a bucket
    /// width re-estimated from the live entries' span.
    fn rebuild(&mut self, nbuckets: usize) {
        let entries: Vec<Entry<T>> = self
            .buckets
            .iter_mut()
            .flat_map(std::mem::take)
            .collect();
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for entry in &entries {
            let t = key_time(entry.key);
            if t.is_finite() {
                lo = lo.min(t);
                hi = hi.max(t);
            }
        }
        let span = hi - lo;
        if span.is_finite() && span > 0.0 {
            self.width_s = (3.0 * span / entries.len() as f64).max(1e-9);
        }
        self.cached_min = None;
        let mut min_day = u64::MAX;
        for entry in entries {
            let t = key_time(entry.key);
            let day = self.day_of(t);
            min_day = min_day.min(day);
            let bucket = self.bucket_of(day);
            self.buckets[bucket].push(Entry { day, ..entry });
        }
        // Re-anchor the cursor under the new width.
        self.day = if min_day == u64::MAX { 0 } else { min_day };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn key_roundtrip_and_order() {
        let times = [0.0, -0.0, 1.5, 86_400.0, 1e-300, 1e300, f64::INFINITY];
        for &t in &times {
            assert_eq!(key_time(key_of(t, 7)).to_bits(), t.to_bits());
        }
        let mut keyed: Vec<u64> = times.iter().map(|&t| time_key(t)).collect();
        keyed.sort_unstable();
        let mut direct = times.to_vec();
        direct.sort_by(f64::total_cmp);
        let direct_keyed: Vec<u64> = direct.iter().map(|&t| time_key(t)).collect();
        assert_eq!(keyed, direct_keyed);
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut cal = Calendar::new();
        cal.push(5.0, 0, "a");
        cal.push(1.0, 1, "b");
        cal.push(5.0, 2, "c");
        cal.push(0.5, 3, "d");
        let order: Vec<&str> = std::iter::from_fn(|| cal.pop().map(|(_, i)| i)).collect();
        assert_eq!(order, ["d", "b", "a", "c"]);
    }

    #[test]
    fn matches_heap_on_mixed_stream() {
        // Deterministic xorshift so the unit test needs no rand dep.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut cal = Calendar::new();
        let mut heap: BinaryHeap<Reverse<u128>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut popped = Vec::new();
        for _ in 0..4000 {
            let r = next();
            if r % 3 != 0 || heap.is_empty() {
                // Cluster times to force duplicate days and some exact ties.
                let t = ((r >> 8) % 1000) as f64 * 0.25;
                cal.push(t, seq, seq);
                heap.push(Reverse(key_of(t, seq)));
                seq += 1;
            } else {
                let (t, item) = cal.pop().expect("heap non-empty");
                let Reverse(expect) = heap.pop().expect("heap non-empty");
                assert_eq!(key_of(t, item), expect, "pop order diverged");
                popped.push(item);
            }
        }
        while let Some((t, item)) = cal.pop() {
            let Reverse(expect) = heap.pop().expect("heap has the rest");
            assert_eq!(key_of(t, item), expect);
            popped.push(item);
        }
        assert!(heap.is_empty());
        assert!(popped.len() > 1000);
    }

    #[test]
    fn remove_first_and_iter() {
        let mut cal = Calendar::new();
        for i in 0..10u64 {
            cal.push(i as f64, i, i);
        }
        assert_eq!(cal.iter().count(), 10);
        assert_eq!(cal.remove_first(|&i| i == 7), Some(7));
        assert_eq!(cal.remove_first(|&i| i == 7), None);
        assert_eq!(cal.len(), 9);
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop().map(|(_, i)| i)).collect();
        assert_eq!(order, [0, 1, 2, 3, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn survives_sparse_then_dense_regimes() {
        let mut cal = Calendar::new();
        // Sparse: gaps far larger than nbuckets * width force the
        // direct-search fallback.
        for i in 0..20u64 {
            cal.push(i as f64 * 1e6, i, i);
        }
        for i in 0..20u64 {
            assert_eq!(cal.pop().map(|(_, x)| x), Some(i));
        }
        // Dense burst at a far future time after the cursor moved.
        for i in 0..200u64 {
            cal.push(5e7 + (i % 13) as f64, 100 + i, i);
        }
        let mut last = None;
        let mut n = 0;
        while let Some((t, _)) = cal.pop() {
            if let Some(prev) = last {
                assert!(t >= prev);
            }
            last = Some(t);
            n += 1;
        }
        assert_eq!(n, 200);
    }
}
