//! The synthetic two-year trace generator.
//!
//! Background load (the rest of the user population) is generated per
//! machine as a nonhomogeneous Poisson process whose rate is calibrated to
//! a target utilization: `rate(t) = target_utilization * growth(t) *
//! diurnal(t) * weekly(t) / E[service]`. Growth makes demand accelerate
//! over the study (paper Fig 2a); diurnal/weekly modulation creates the
//! transient overloads behind day-long queue tails (Fig 3).
//!
//! Study jobs — the instrumented subset standing in for the paper's 6 000
//! academic jobs — additionally carry per-circuit detail derived from real
//! benchmark circuits ([`qcs_circuit::library`]).

use qcs_circuit::{library, CircuitMetrics};
use qcs_cloud::JobSpec;
use qcs_machine::{Fleet, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sampler;

/// Circuit family mix for study jobs: `(family, weight)`.
const STUDY_FAMILIES: &[(&str, f64)] = &[
    ("qft", 0.15),
    ("ghz", 0.15),
    ("bv", 0.10),
    ("qv", 0.10),
    ("rand", 0.25),
    ("hea", 0.15),
    ("adder", 0.05),
    ("w", 0.05),
];

/// Workload generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// RNG seed.
    pub seed: u64,
    /// Study duration in days (the paper covers ~730).
    pub days: f64,
    /// Number of instrumented study jobs to generate (~6000 in the paper).
    pub study_jobs: usize,
    /// Fair-share providers across the population (study jobs share hubs
    /// with everyone else).
    pub num_providers: usize,
    /// Global multiplier on background demand (1.0 = calibrated default).
    pub demand_scale: f64,
    /// End-of-study demand relative to start (e.g. 4.0 = 4x growth).
    pub growth_end_factor: f64,
    /// Fraction of users who will cancel if queued too long.
    pub impatient_fraction: f64,
    /// Mean patience of impatient users, hours.
    pub mean_patience_hours: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0,
            days: 730.0,
            study_jobs: 6000,
            num_providers: 40,
            demand_scale: 1.0,
            growth_end_factor: 3.0,
            impatient_fraction: 0.05,
            mean_patience_hours: 16.0,
        }
    }
}

impl WorkloadConfig {
    /// A small configuration for tests and examples: two weeks, light
    /// demand.
    #[must_use]
    pub fn smoke() -> Self {
        WorkloadConfig {
            days: 14.0,
            study_jobs: 400,
            ..WorkloadConfig::default()
        }
    }
}

/// Per-circuit detail of a study job (feeds Figs 7, 8 and the predictor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyCircuit {
    /// Owning job id.
    pub job_id: u64,
    /// Circuit-family index (resolve with [`family_name`]).
    pub family: u8,
    /// Circuit width (qubits used).
    pub width: u32,
    /// Circuit depth.
    pub depth: u32,
    /// Two-qubit gate count.
    pub cx_count: u32,
    /// Total gates.
    pub total_gates: u32,
    /// Shots.
    pub shots: u32,
}

/// The generated trace.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// All jobs (background + study), sorted by submission time.
    pub jobs: Vec<JobSpec>,
    /// Per-circuit detail for study jobs.
    pub study_circuits: Vec<StudyCircuit>,
}

impl Workload {
    /// Number of study jobs in the trace.
    #[must_use]
    pub fn num_study_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.is_study).count()
    }
}

/// Target mid-study utilization for each machine, encoding the demand
/// imbalance of the paper's Fig 9: public machines run near saturation,
/// privileged machines are lighter, large privileged machines are popular.
fn target_utilization(machine: &Machine, rng: &mut StdRng) -> f64 {
    (base_utilization(machine) * rng.gen_range(0.92..1.08)).clamp(0.05, 0.97)
}

/// Deterministic demand level per machine (before per-machine jitter).
/// Also reused as the popularity weight for study-job machine choice.
fn base_utilization(machine: &Machine) -> f64 {
    if machine.access().is_public() {
        match machine.name() {
            "athens" => 0.99, // "10-100x more in demand than other 5-qubit machines"
            _ => 0.96,
        }
    } else {
        match machine.num_qubits() {
            0..=9 => 0.55,
            10..=26 => 0.68,
            _ => 0.85, // 27q and 65q premium machines still see high demand
        }
    }
}

/// Expected service time per job on a machine given the sampler's mean
/// batch/shots/depth, used to convert utilization targets into arrival
/// rates.
fn expected_service_s(machine: &Machine) -> f64 {
    // Means of the mixtures in `sampler` (kept in sync by a test below).
    let mean_batch = 258.0;
    let mean_shots = 6050.0;
    let mean_depth = (15.0 + 0.3 * machine.num_qubits() as f64).round() as usize;
    machine.cost_model().job_overhead_s
        + mean_batch
            * machine
                .cost_model()
                .circuit_time_s(mean_depth, mean_shots as u32)
}

/// Demand growth over the study: exponential with `end/start =
/// end_factor`, anchored so the base level is reached a quarter of the way
/// in (demand then sits at or above base — capped — for most of the
/// study, as it did on the heavily-contended 2019-2021 IBM fleet).
fn growth_factor(t_days: f64, days: f64, end_factor: f64) -> f64 {
    if end_factor <= 1.0 {
        return 1.0;
    }
    let k = end_factor.ln() / days;
    (k * t_days).exp() / (k * 0.25 * days).exp()
}

/// Intra-day demand modulation: peak mid-afternoon, trough overnight.
fn diurnal_factor(t_hours: f64) -> f64 {
    let hour_of_day = t_hours.rem_euclid(24.0);
    1.0 + 0.50 * ((hour_of_day - 15.0) * std::f64::consts::PI / 12.0).cos()
}

/// Weekly modulation: weekends are quieter.
fn weekly_factor(t_days: f64) -> f64 {
    let day_of_week = (t_days.floor() as u64) % 7;
    if day_of_week >= 5 {
        0.60
    } else {
        1.15
    }
}

/// Generate the full trace for a fleet.
///
/// Deterministic given `(fleet, config)`.
///
/// # Examples
///
/// ```
/// use qcs_machine::Fleet;
/// use qcs_workload::{generate, WorkloadConfig};
///
/// let workload = generate(&Fleet::ibm_like(), &WorkloadConfig::smoke());
/// assert!(workload.num_study_jobs() > 0);
/// assert!(workload.jobs.windows(2).all(|w| w[0].submit_s <= w[1].submit_s));
/// ```
#[must_use]
pub fn generate(fleet: &Fleet, config: &WorkloadConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut next_id = 0u64;

    // --- background load ------------------------------------------------
    for (m_idx, machine) in fleet.iter().enumerate() {
        let rho = target_utilization(machine, &mut rng) * config.demand_scale;
        let service = expected_service_s(machine);
        let base_rate_per_hour = rho * 3600.0 / service;
        let total_hours = (config.days * 24.0).ceil() as u64;
        // Demand saturates per machine: popular machines can run much
        // closer to capacity than lightly-used hub machines, whose member
        // population bounds their demand. Without a cap the busiest
        // queues diverge; real users flee unbounded backlogs.
        let saturation_cap = (rho + 0.6 * (1.0 - rho)).min(0.985);
        for hour in 0..total_hours {
            let t_hours = hour as f64;
            let t_days = t_hours / 24.0;
            let grown = (rho * growth_factor(t_days, config.days, config.growth_end_factor))
                .min(saturation_cap);
            let rate = grown / rho.max(1e-9)
                * base_rate_per_hour
                * diurnal_factor(t_hours)
                * weekly_factor(t_days);
            let n = sampler::poisson(&mut rng, rate);
            for _ in 0..n {
                let submit_s = (t_hours + rng.gen_range(0.0..1.0)) * 3600.0;
                jobs.push(background_job(
                    next_id, m_idx, machine, submit_s, config, &mut rng,
                ));
                next_id += 1;
            }
        }
    }

    // --- study jobs -------------------------------------------------------
    let mut study_circuits = Vec::new();
    let weights: Vec<f64> = fleet
        .iter()
        .map(|m| {
            // Researchers blend popularity-following (the busy machines are
            // busy because everyone picks them) with quality/size-seeking.
            let quality_bias = 1.2e-2 / m.profile().mean_cx_error.max(1e-4);
            let size_bias = 1.0 + m.num_qubits() as f64 / 30.0;
            4.0 * base_utilization(m).powi(3) + 0.5 * quality_bias * size_bias
        })
        .collect();
    let weight_total: f64 = weights.iter().sum();

    for _ in 0..config.study_jobs {
        // Submission time follows the same demand growth curve, and the
        // hour-of-day follows the diurnal work pattern (researchers submit
        // when everyone else does, which is when queues are longest).
        let t_days = sample_growth_time(&mut rng, config.days, config.growth_end_factor);
        let hour = sample_diurnal_hour(&mut rng);
        let submit_s = (t_days.floor() + hour / 24.0).min(config.days) * 86_400.0;
        // Weighted machine choice.
        let mut pick = rng.gen_range(0.0..weight_total);
        let mut m_idx = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                m_idx = i;
                break;
            }
            pick -= w;
        }
        let machine = &fleet.machines()[m_idx];
        // Study jobs queue inside an ordinary shared hub: the fair-share
        // scheduler must not hand the instrumented group a fast lane.
        let provider = sampler::zipf_provider(&mut rng, config.num_providers);
        let (job, circuits) = study_job(next_id, m_idx, machine, provider, submit_s, &mut rng);
        jobs.push(job);
        study_circuits.extend(circuits);
        next_id += 1;
    }

    jobs.sort_by(|a, b| {
        a.submit_s
            .partial_cmp(&b.submit_s)
            .expect("submit times are finite")
    });
    Workload {
        jobs,
        study_circuits,
    }
}

/// Rejection-sample an hour-of-day from the diurnal demand profile.
fn sample_diurnal_hour(rng: &mut StdRng) -> f64 {
    loop {
        let h = rng.gen_range(0.0..24.0);
        let accept = diurnal_factor(h) / 1.50; // peak value of the profile
        if rng.gen_range(0.0..1.0) < accept {
            return h;
        }
    }
}

/// Inverse-CDF sample of a time in `[0, days]` under exponential demand
/// growth.
fn sample_growth_time(rng: &mut StdRng, days: f64, end_factor: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    if end_factor <= 1.0 {
        return u * days;
    }
    let k = end_factor.ln() / days;
    (1.0 + u * (end_factor - 1.0)).ln() / k
}

fn background_job(
    id: u64,
    machine_idx: usize,
    machine: &Machine,
    submit_s: f64,
    config: &WorkloadConfig,
    rng: &mut StdRng,
) -> JobSpec {
    let width = sampler::width(rng, machine.num_qubits());
    let depth = 5.0 + 1.6 * width as f64 + rng.gen_range(0.0..10.0);
    let patience_s = if rng.gen_range(0.0..1.0) < config.impatient_fraction {
        qcs_calibration::distributions::lognormal_with_cov(
            rng,
            config.mean_patience_hours * 3600.0,
            1.0,
        )
    } else {
        f64::INFINITY
    };
    JobSpec {
        id,
        provider: sampler::zipf_provider(rng, config.num_providers),
        machine: machine_idx,
        circuits: sampler::batch_size(rng, machine.max_batch_size() as u32),
        shots: sampler::shots(rng, machine.max_shots()),
        mean_depth: depth,
        mean_width: width as f64,
        submit_s,
        is_study: false,
        patience_s,
    }
}

/// Build one study job with per-circuit detail derived from a real
/// benchmark circuit of the chosen family.
fn study_job(
    id: u64,
    machine_idx: usize,
    machine: &Machine,
    provider: u32,
    submit_s: f64,
    rng: &mut StdRng,
) -> (JobSpec, Vec<StudyCircuit>) {
    // Family choice.
    let total_w: f64 = STUDY_FAMILIES.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0.0..total_w);
    let mut fam_idx = 0;
    for (i, (_, w)) in STUDY_FAMILIES.iter().enumerate() {
        if pick < *w {
            fam_idx = i;
            break;
        }
        pick -= w;
    }
    let family = STUDY_FAMILIES[fam_idx].0;

    let width = sampler::width(rng, machine.num_qubits()).min(32);
    let representative = library::by_family(family, width, rng.gen())
        .expect("study families are valid");
    let metrics = CircuitMetrics::of(&representative);

    let batch = sampler::batch_size(rng, machine.max_batch_size() as u32);
    let shots = sampler::shots(rng, machine.max_shots());

    let mut circuits = Vec::with_capacity(batch as usize);
    let mut depth_sum = 0.0;
    for _ in 0..batch {
        // Circuits within a batch are close variants of the representative.
        let jitter = rng.gen_range(0.9..1.1);
        let depth = ((metrics.depth as f64) * jitter).round().max(1.0) as u32;
        let cx = ((metrics.cx_total as f64) * jitter).round() as u32;
        let gates = ((metrics.total_gates as f64) * jitter).round().max(1.0) as u32;
        depth_sum += f64::from(depth);
        circuits.push(StudyCircuit {
            job_id: id,
            family: fam_idx as u8,
            width: representative.num_qubits() as u32,
            depth,
            cx_count: cx,
            total_gates: gates,
            shots,
        });
    }

    let job = JobSpec {
        id,
        provider,
        machine: machine_idx,
        circuits: batch,
        shots,
        mean_depth: depth_sum / f64::from(batch),
        mean_width: representative.num_qubits() as f64,
        submit_s,
        is_study: true,
        patience_s: f64::INFINITY,
    };
    (job, circuits)
}

/// Name of a study circuit family index (see [`StudyCircuit::family`];
/// families are qft, ghz, bv, qv, rand, hea, adder, w in that order).
#[must_use]
pub fn family_name(index: u8) -> &'static str {
    STUDY_FAMILIES
        .get(index as usize)
        .map_or("unknown", |(name, _)| name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            days: 3.0,
            study_jobs: 40,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn generates_sorted_jobs() {
        let w = generate(&Fleet::ibm_like(), &small_config());
        assert!(!w.jobs.is_empty());
        assert!(w.jobs.windows(2).all(|p| p[0].submit_s <= p[1].submit_s));
    }

    #[test]
    fn study_jobs_present_with_details() {
        let w = generate(&Fleet::ibm_like(), &small_config());
        assert_eq!(w.num_study_jobs(), 40);
        assert!(!w.study_circuits.is_empty());
        // Every study circuit belongs to a study job.
        let study_ids: std::collections::HashSet<u64> = w
            .jobs
            .iter()
            .filter(|j| j.is_study)
            .map(|j| j.id)
            .collect();
        assert!(w.study_circuits.iter().all(|c| study_ids.contains(&c.job_id)));
        // Batch sizes match circuit detail counts.
        for j in w.jobs.iter().filter(|j| j.is_study) {
            let n = w.study_circuits.iter().filter(|c| c.job_id == j.id).count();
            assert_eq!(n, j.circuits as usize, "job {}", j.id);
        }
    }

    #[test]
    fn deterministic() {
        let fleet = Fleet::ibm_like();
        let a = generate(&fleet, &small_config());
        let b = generate(&fleet, &small_config());
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.study_circuits, b.study_circuits);
    }

    #[test]
    fn ids_unique() {
        let w = generate(&Fleet::ibm_like(), &small_config());
        let mut ids: Vec<u64> = w.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), w.jobs.len());
    }

    #[test]
    fn public_machines_attract_more_demand() {
        let fleet = Fleet::ibm_like();
        // A statistical assertion on base demand rates (athens 0.99 vs
        // bogota 0.55): disable growth, whose saturation cap lets bogota
        // catch up over the study, and use a 10-day window so the ratio
        // converges well clear of the 1.4x threshold regardless of the
        // RNG stream.
        let config = WorkloadConfig {
            days: 10.0,
            study_jobs: 40,
            growth_end_factor: 1.0,
            ..WorkloadConfig::default()
        };
        let w = generate(&fleet, &config);
        let count = |name: &str| {
            let idx = fleet.index_of(name).unwrap();
            w.jobs.iter().filter(|j| j.machine == idx && !j.is_study).count()
        };
        // athens (public, hot, base 0.99) vs bogota (privileged 5q, 0.55).
        let athens = count("athens") as f64;
        let bogota = count("bogota").max(1) as f64;
        assert!(athens > 1.4 * bogota, "athens {athens} bogota {bogota}");
    }

    #[test]
    fn growth_increases_rate() {
        let fleet = Fleet::ibm_like();
        let config = WorkloadConfig {
            days: 20.0,
            study_jobs: 0,
            ..WorkloadConfig::default()
        };
        let w = generate(&fleet, &config);
        let first_half = w.jobs.iter().filter(|j| j.submit_s < 10.0 * 86400.0).count();
        let second_half = w.jobs.len() - first_half;
        assert!(
            second_half > first_half,
            "first {first_half} second {second_half}"
        );
    }

    #[test]
    fn growth_factor_anchored_at_first_quarter() {
        let days = 730.0;
        // Base level is reached a quarter of the way in.
        assert!((growth_factor(0.25 * days, days, 4.0) - 1.0).abs() < 1e-12);
        // End/start ratio equals the configured factor.
        let ratio = growth_factor(days, days, 4.0) / growth_factor(0.0, days, 4.0);
        assert!((ratio - 4.0).abs() < 1e-9);
        // Monotone increasing.
        assert!(growth_factor(100.0, days, 4.0) < growth_factor(600.0, days, 4.0));
    }

    #[test]
    fn diurnal_peaks_mid_afternoon() {
        assert!(diurnal_factor(15.0) > 1.4);
        assert!(diurnal_factor(3.0) < 0.6);
        // Mean over a day ~ 1.
        let mean: f64 = (0..240).map(|i| diurnal_factor(i as f64 / 10.0)).sum::<f64>() / 240.0;
        assert!((mean - 1.0).abs() < 0.01);
    }

    #[test]
    fn expected_service_matches_samplers() {
        // The analytic means used for rate calibration must track the
        // samplers within ~15%; drift here silently mis-calibrates load.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let n = 40_000;
        let mean_batch: f64 = (0..n)
            .map(|_| f64::from(sampler::batch_size(&mut rng, 900)))
            .sum::<f64>()
            / n as f64;
        let mean_shots: f64 = (0..n)
            .map(|_| f64::from(sampler::shots(&mut rng, 8192)))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_batch - 258.0).abs() / 258.0 < 0.15,
            "batch mean {mean_batch}"
        );
        assert!(
            (mean_shots - 6050.0).abs() / 6050.0 < 0.15,
            "shots mean {mean_shots}"
        );
    }

    #[test]
    fn family_name_lookup() {
        assert_eq!(family_name(0), "qft");
        assert_eq!(family_name(200), "unknown");
    }

    #[test]
    fn demand_scale_scales() {
        let fleet = Fleet::ibm_like();
        let base = generate(
            &fleet,
            &WorkloadConfig {
                days: 3.0,
                study_jobs: 0,
                ..WorkloadConfig::default()
            },
        );
        let light = generate(
            &fleet,
            &WorkloadConfig {
                days: 3.0,
                study_jobs: 0,
                demand_scale: 0.3,
                ..WorkloadConfig::default()
            },
        );
        assert!(
            (light.jobs.len() as f64) < 0.5 * base.jobs.len() as f64,
            "light {} base {}",
            light.jobs.len(),
            base.jobs.len()
        );
    }
}
