//! Aggregate circuit metrics — the quantities the paper correlates against
//! fidelity and runtime (Figs 7, 14, 15).

use crate::Circuit;

/// A summary of the structural characteristics of a circuit.
///
/// These are exactly the "circuit characteristics" features of the paper's
/// runtime-prediction model (§VI-C: depth, width, total gates) plus the
/// CX-centric fidelity indicators of §IV-B.
///
/// # Examples
///
/// ```
/// use qcs_circuit::{Circuit, CircuitMetrics};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// let m = CircuitMetrics::of(&c);
/// assert_eq!(m.width, 2);
/// assert_eq!(m.cx_total, 1);
/// assert_eq!(m.depth, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitMetrics {
    /// Register width (number of qubits the circuit is declared over).
    pub width: usize,
    /// Number of qubits actually touched by at least one gate.
    pub active_qubits: usize,
    /// Total non-directive instructions.
    pub total_gates: usize,
    /// Critical-path length counting every gate.
    pub depth: usize,
    /// Critical-path length counting only two-qubit gates ("CX-Depth").
    pub cx_depth: usize,
    /// Total two-qubit gates ("CX-Total").
    pub cx_total: usize,
    /// Total single-qubit unitary gates.
    pub single_qubit_gates: usize,
    /// Number of measurement operations.
    pub measurements: usize,
}

impl CircuitMetrics {
    /// Compute all metrics for `circuit` in one pass over the instruction
    /// stream (plus two depth computations).
    #[must_use]
    pub fn of(circuit: &Circuit) -> Self {
        CircuitMetrics {
            width: circuit.num_qubits(),
            active_qubits: circuit.active_qubits(),
            total_gates: circuit.size(),
            depth: circuit.depth(),
            cx_depth: circuit.cx_depth(),
            cx_total: circuit.cx_count(),
            single_qubit_gates: circuit.single_qubit_gate_count(),
            measurements: circuit.measure_count(),
        }
    }

    /// CX-Depth x average CX error — the paper's "CX-D * CX-Err" fidelity
    /// indicator (Fig 7). `avg_cx_error` comes from the target machine's
    /// calibration.
    #[must_use]
    pub fn cx_depth_error_product(&self, avg_cx_error: f64) -> f64 {
        self.cx_depth as f64 * avg_cx_error
    }

    /// CX-Total x average CX error — the paper's "CX-T * CX-Err" indicator.
    #[must_use]
    pub fn cx_total_error_product(&self, avg_cx_error: f64) -> f64 {
        self.cx_total as f64 * avg_cx_error
    }

    /// A first-order estimated success probability from gate counts:
    /// `(1 - e1)^n1 * (1 - e2)^n2 * (1 - em)^nm`.
    ///
    /// This is the standard analytic ESP heuristic; the noisy simulator in
    /// `qcs-sim` provides the empirical counterpart.
    #[must_use]
    pub fn estimated_success_probability(
        &self,
        avg_1q_error: f64,
        avg_cx_error: f64,
        avg_readout_error: f64,
    ) -> f64 {
        (1.0 - avg_1q_error).powi(self.single_qubit_gates as i32)
            * (1.0 - avg_cx_error).powi(self.cx_total as i32)
            * (1.0 - avg_readout_error).powi(self.measurements as i32)
    }
}

impl From<&Circuit> for CircuitMetrics {
    fn from(c: &Circuit) -> Self {
        CircuitMetrics::of(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghzish(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 1..n {
            c.cx(i - 1, i);
        }
        c.measure_all();
        c
    }

    #[test]
    fn metrics_of_chain() {
        let m = CircuitMetrics::of(&ghzish(4));
        assert_eq!(m.width, 4);
        assert_eq!(m.active_qubits, 4);
        assert_eq!(m.cx_total, 3);
        assert_eq!(m.cx_depth, 3);
        assert_eq!(m.single_qubit_gates, 1);
        assert_eq!(m.measurements, 4);
        assert_eq!(m.total_gates, 8);
    }

    #[test]
    fn esp_decreases_with_gates() {
        let small = CircuitMetrics::of(&ghzish(3));
        let large = CircuitMetrics::of(&ghzish(8));
        let esp_s = small.estimated_success_probability(1e-3, 1e-2, 2e-2);
        let esp_l = large.estimated_success_probability(1e-3, 1e-2, 2e-2);
        assert!(esp_s > esp_l);
        assert!(esp_s <= 1.0 && esp_l > 0.0);
    }

    #[test]
    fn esp_perfect_machine_is_one() {
        let m = CircuitMetrics::of(&ghzish(5));
        let esp = m.estimated_success_probability(0.0, 0.0, 0.0);
        assert!((esp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_products_scale_linearly() {
        let m = CircuitMetrics::of(&ghzish(5));
        assert!((m.cx_depth_error_product(0.01) - m.cx_depth as f64 * 0.01).abs() < 1e-12);
        assert!((m.cx_total_error_product(0.02) - m.cx_total as f64 * 0.02).abs() < 1e-12);
    }

    #[test]
    fn from_ref_matches_of() {
        let c = ghzish(3);
        let a = CircuitMetrics::of(&c);
        let b: CircuitMetrics = (&c).into();
        assert_eq!(a, b);
    }
}
