//! # qcs-transpiler
//!
//! A device-aware quantum circuit transpiler for the `qcs` quantum-cloud
//! study. The pipeline — basis translation, layout, routing, swap
//! decomposition, peephole optimization, ASAP scheduling — mirrors the
//! pass structure whose compile-time scaling the paper measures (Fig 5),
//! and its noise-aware layout is the mechanism behind calibration-staleness
//! effects (Fig 12b).
//!
//! # Examples
//!
//! ```
//! use qcs_circuit::library;
//! use qcs_machine::Fleet;
//! use qcs_transpiler::{transpile, Target, TranspileOptions};
//!
//! let fleet = Fleet::ibm_like();
//! let target = Target::from_machine(fleet.get("casablanca").unwrap(), 12.0);
//! let result = transpile(&library::qft(4), &target, TranspileOptions::full())?;
//! assert!(result.output_metrics.cx_total > 0);
//! println!("compile took {:?}", result.timings.total());
//! # Ok::<(), qcs_transpiler::TranspileError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod basis;
mod cache;
mod error;
pub mod layout;
pub mod multiprog;
pub mod optimize;
pub mod routing;
pub mod schedule;
mod target;
mod transpile;

pub use cache::{CacheStats, TranspileCache, TranspileKey};
pub use error::TranspileError;
pub use layout::Layout;
pub use routing::{RoutingResult, SabreOptions};
pub use schedule::{DurationModel, ScheduledCircuit};
pub use schedule::{schedule_alap, schedule_asap};
pub use target::Target;
pub use transpile::{
    transpile, transpile_batch, transpile_batch_cached, LayoutMethod, PassTimings, RoutingMethod,
    TranspileOptions, TranspileResult,
};
