//! Criterion benchmarks of the statevector and noisy simulators (the
//! substrate behind Fig 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcs_calibration::NoiseProfile;
use qcs_circuit::library;
use qcs_sim::{qft_pos_circuit, NoisySimulator, Statevector};
use qcs_topology::families;

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_qft");
    for n in [8usize, 12, 16] {
        let circuit = library::qft(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| Statevector::from_circuit(circuit).unwrap());
        });
    }
    group.finish();
}

fn bench_noisy_run(c: &mut Criterion) {
    let circuit = qft_pos_circuit(4);
    let snapshot = NoiseProfile::with_seed(1).snapshot(&families::complete(4), 0);
    let mut group = c.benchmark_group("noisy_qft4_pos");
    for shots in [1024u32, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(shots), &shots, |b, &shots| {
            b.iter(|| {
                NoisySimulator::with_seed(7)
                    .run(&circuit, &snapshot, shots)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_statevector, bench_noisy_run);
criterion_main!(benches);
