//! Small sampling helpers (Box–Muller normal, lognormal) so the workspace
//! does not need `rand_distr`.

use rand::Rng;

/// Sample a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample `N(mean, std_dev)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Sample a lognormal distribution **with the given linear-scale mean** and
/// coefficient of variation (std/mean).
///
/// For CoV `c`, the underlying normal has `sigma^2 = ln(1 + c^2)` and
/// `mu = ln(mean) - sigma^2 / 2`, so `E[X] = mean` exactly.
///
/// # Panics
///
/// Panics if `mean <= 0` or `cov < 0`.
pub fn lognormal_with_cov<R: Rng + ?Sized>(rng: &mut R, mean: f64, cov: f64) -> f64 {
    assert!(mean > 0.0, "lognormal mean must be positive");
    assert!(cov >= 0.0, "coefficient of variation must be non-negative");
    if cov == 0.0 {
        return mean;
    }
    let sigma2 = (1.0 + cov * cov).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    (mu + sigma2.sqrt() * standard_normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_mean_and_cov() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 40_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| lognormal_with_cov(&mut rng, 0.01, 0.75))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cov = var.sqrt() / mean;
        assert!((mean - 0.01).abs() < 0.001, "mean {mean}");
        assert!((cov - 0.75).abs() < 0.08, "cov {cov}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_zero_cov_is_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(lognormal_with_cov(&mut rng, 0.5, 0.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn lognormal_rejects_nonpositive_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = lognormal_with_cov(&mut rng, 0.0, 0.5);
    }
}
