//! Noisy execution: Monte-Carlo Pauli-trajectory simulation driven by a
//! machine's calibration snapshot.
//!
//! This stands in for real-hardware execution in the paper's fidelity
//! experiments (Fig 7): each gate fails with its calibrated error
//! probability (injecting a random Pauli on its operands), and each
//! measured bit flips with its calibrated readout error. Error magnitudes
//! come straight from the calibration snapshot, so fidelity inherits the
//! machine-to-machine and day-to-day variation of the calibration model.

use qcs_calibration::CalibrationSnapshot;
use qcs_circuit::{Circuit, Gate, Instruction, Qubit};
use qcs_exec::ExecConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CdfSampler, Counts, SimError, Statevector};

/// Monte-Carlo noisy simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoisySimulator {
    /// Number of independent Pauli trajectories; shots are distributed
    /// evenly across them.
    pub trajectories: usize,
    /// RNG seed.
    pub seed: u64,
    /// Also apply T1 amplitude damping and T2 dephasing, scaled by each
    /// gate's duration against the operand qubits' calibrated coherence
    /// times. Off by default (gate + readout errors only).
    pub decoherence: bool,
    /// Worker threads for the trajectory loop; `0` (default) means
    /// [`std::thread::available_parallelism`]. Counts are bit-identical
    /// at any thread count: every trajectory draws from its own RNG,
    /// seeded by SplitMix64 from `(seed, trajectory index)`.
    pub threads: usize,
}

impl Default for NoisySimulator {
    fn default() -> Self {
        NoisySimulator {
            trajectories: 128,
            seed: 0,
            decoherence: false,
            threads: 0,
        }
    }
}

impl NoisySimulator {
    /// A simulator with the given seed and default trajectory count.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        NoisySimulator {
            seed,
            ..NoisySimulator::default()
        }
    }

    /// Enable duration-scaled T1/T2 decoherence; returns the modified
    /// simulator for chaining.
    #[must_use]
    pub fn with_decoherence(mut self) -> Self {
        self.decoherence = true;
        self
    }

    /// Set the trajectory-loop worker thread count (`0` = auto); returns
    /// the modified simulator for chaining. The result of
    /// [`NoisySimulator::run`] does not depend on this value.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Execute `circuit` for `shots` shots under the noise described by
    /// `snapshot`. Operand indices of the circuit must be physical qubits
    /// covered by the snapshot (i.e. run this on *transpiled* circuits).
    ///
    /// Trajectories run on a bounded worker pool ([`NoisySimulator::threads`])
    /// and each one seeds its own RNG from `(self.seed, trajectory index)`
    /// via SplitMix64, so the returned [`Counts`] are bit-identical for a
    /// given seed at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the circuit exceeds simulator limits.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0` or the snapshot does not cover the circuit
    /// width.
    pub fn run(
        &self,
        circuit: &Circuit,
        snapshot: &CalibrationSnapshot,
        shots: u32,
    ) -> Result<Counts, SimError> {
        assert!(shots > 0, "shots must be positive");
        assert!(
            snapshot.num_qubits() >= circuit.num_qubits(),
            "snapshot narrower than circuit"
        );
        let measure_map = measurement_map(circuit);
        let width = used_clbit_width(&measure_map);

        let trajectories = self.trajectories.clamp(1, shots as usize);
        let base = shots as usize / trajectories;
        let extra = shots as usize % trajectories;

        let indices: Vec<usize> = (0..trajectories).collect();
        let exec = ExecConfig::with_threads(self.threads);
        // Each worker reuses one CDF table allocation across all the
        // trajectories it processes.
        let partials = qcs_exec::parallel_map_with(
            &exec,
            &indices,
            CdfSampler::default,
            |sampler, _, &t| -> Result<Counts, SimError> {
                let traj_shots = base + usize::from(t < extra);
                let mut rng = StdRng::seed_from_u64(qcs_exec::derive_seed(self.seed, t as u64));
                let state = self.run_trajectory(circuit, snapshot, &mut rng)?;
                sampler.rebuild(&state);
                let mut counts = Counts::new(width);
                for _ in 0..traj_shots {
                    let basis = sampler.sample(&mut rng);
                    let mut word = 0u64;
                    for &(q, c) in &measure_map {
                        let mut bit = (basis >> q) & 1;
                        let ro = snapshot.qubit(q).readout_error;
                        if rng.gen_range(0.0..1.0) < ro {
                            bit ^= 1;
                        }
                        word |= (bit as u64) << c;
                    }
                    counts.record(word, 1);
                }
                Ok(counts)
            },
        );

        // Merge in trajectory order; the first error (by trajectory
        // index) wins, matching what a sequential loop would report.
        let mut counts = Counts::new(width);
        for partial in partials {
            counts.merge(&partial?);
        }
        Ok(counts)
    }

    /// Run one Pauli trajectory: the ideal circuit with stochastic Pauli
    /// injections after faulty gates.
    fn run_trajectory(
        &self,
        circuit: &Circuit,
        snapshot: &CalibrationSnapshot,
        rng: &mut StdRng,
    ) -> Result<Statevector, SimError> {
        let mut state = Statevector::zero(circuit.num_qubits())?;
        for inst in circuit.instructions() {
            state.apply_with_rng(inst, rng)?;
            if !inst.gate.is_unitary() || inst.gate.is_directive() || inst.gate == Gate::Id {
                continue;
            }
            let error_prob = gate_error(inst, snapshot);
            if error_prob > 0.0 && rng.gen_range(0.0..1.0) < error_prob {
                inject_pauli(&mut state, &inst.qubits, rng)?;
            }
            if self.decoherence {
                let duration_ns = gate_duration_ns(inst, snapshot);
                for q in &inst.qubits {
                    apply_decoherence(&mut state, q.index(), duration_ns, snapshot, rng);
                }
            }
        }
        Ok(state)
    }
}

/// Nominal duration of an instruction for decoherence purposes, ns
/// (mirrors the transpiler's duration model).
fn gate_duration_ns(inst: &Instruction, snapshot: &CalibrationSnapshot) -> f64 {
    if inst.gate == Gate::Measure {
        return 4000.0;
    }
    if inst.gate.is_two_qubit() {
        let (a, b) = (inst.qubits[0].index(), inst.qubits[1].index());
        let base = snapshot.edge(a, b).map_or(350.0, |e| e.cx_duration_ns);
        if inst.gate == Gate::Swap {
            return 3.0 * base;
        }
        return base;
    }
    if matches!(inst.gate, Gate::Rz(_) | Gate::Id) {
        return 0.0; // virtual / no pulse
    }
    35.0
}

/// One T1/T2 trajectory step on qubit `q` over `duration_ns`.
fn apply_decoherence(
    state: &mut Statevector,
    q: usize,
    duration_ns: f64,
    snapshot: &CalibrationSnapshot,
    rng: &mut StdRng,
) {
    if duration_ns <= 0.0 {
        return;
    }
    let cal = snapshot.qubit(q);
    let t_us = duration_ns / 1000.0;
    if cal.t1_us.is_finite() && cal.t1_us > 0.0 {
        let gamma = 1.0 - (-t_us / cal.t1_us).exp();
        state.apply_amplitude_damping(q, gamma, rng);
    }
    // Pure dephasing rate: 1/T_phi = 1/T2 - 1/(2 T1).
    if cal.t2_us.is_finite() && cal.t2_us > 0.0 {
        let inv_t1 = if cal.t1_us.is_finite() && cal.t1_us > 0.0 {
            1.0 / (2.0 * cal.t1_us)
        } else {
            0.0
        };
        let inv_tphi = (1.0 / cal.t2_us - inv_t1).max(0.0);
        let p_phase = 0.5 * (1.0 - (-t_us * inv_tphi).exp());
        state.apply_dephasing(q, p_phase, rng);
    }
}

/// The calibrated error probability of one instruction.
fn gate_error(inst: &Instruction, snapshot: &CalibrationSnapshot) -> f64 {
    if inst.gate.is_two_qubit() {
        let (a, b) = (inst.qubits[0].index(), inst.qubits[1].index());
        let edge = snapshot.edge(a, b).map_or_else(
            // Uncoupled pair (e.g. pre-routing circuit): charge the average.
            || snapshot.avg_cx_error(),
            |e| e.cx_error,
        );
        // A swap is three CX applications.
        if inst.gate == Gate::Swap {
            1.0 - (1.0 - edge).powi(3)
        } else {
            edge
        }
    } else {
        snapshot.qubit(inst.qubits[0].index()).single_qubit_error
    }
}

/// Apply a uniformly random non-identity Pauli word on the given qubits.
fn inject_pauli(
    state: &mut Statevector,
    qubits: &[Qubit],
    rng: &mut StdRng,
) -> Result<(), SimError> {
    // Sample a non-identity Pauli word: for k qubits there are 4^k - 1.
    let k = qubits.len();
    let choices = 4usize.pow(k as u32) - 1;
    let word = rng.gen_range(1..=choices);
    for (i, &q) in qubits.iter().enumerate() {
        let pauli = (word >> (2 * i)) & 3;
        let gate = match pauli {
            0 => continue,
            1 => Gate::X,
            2 => Gate::Y,
            _ => Gate::Z,
        };
        state.apply(&Instruction::gate(gate, &[q]))?;
    }
    Ok(())
}

/// The `(qubit, clbit)` pairs of final measurements (later measurements of
/// the same qubit override earlier ones).
#[must_use]
pub fn measurement_map(circuit: &Circuit) -> Vec<(usize, usize)> {
    let mut map: Vec<(usize, usize)> = Vec::new();
    for inst in circuit.instructions() {
        if inst.gate == Gate::Measure {
            let q = inst.qubits[0].index();
            let c = inst.clbits[0].index();
            map.retain(|&(mq, _)| mq != q);
            map.push((q, c));
        }
    }
    map.sort_unstable();
    map
}

/// Width of the classical word actually used by a measurement map: one
/// past the highest measured clbit (minimum 1).
#[must_use]
pub fn used_clbit_width(measure_map: &[(usize, usize)]) -> usize {
    measure_map.iter().map(|&(_, c)| c + 1).max().unwrap_or(1)
}

/// The exact clbit-word distribution of `circuit` under noiseless
/// execution (unitary evolution + measurement map, no sampling). The
/// distribution is indexed by clbit word and sized by the highest clbit
/// actually measured.
///
/// # Errors
///
/// Returns [`SimError`] for oversized or unsupported circuits, including
/// measurement maps spanning more clbits than [`crate::MAX_QUBITS`].
pub fn clbit_distribution(circuit: &Circuit) -> Result<Vec<f64>, SimError> {
    let state = Statevector::from_circuit(circuit)?;
    let map = measurement_map(circuit);
    let width = used_clbit_width(&map);
    if width > crate::MAX_QUBITS {
        return Err(SimError::TooManyQubits { requested: width });
    }
    let mut probs = Vec::new();
    state.probabilities_into(&mut probs);
    let mut dist = vec![0.0f64; 1 << width];
    for (basis, &p) in probs.iter().enumerate() {
        let mut word = 0u64;
        for &(q, c) in &map {
            word |= (((basis >> q) & 1) as u64) << c;
        }
        dist[word as usize] += p;
    }
    Ok(dist)
}

/// Probability of success against a known ideal outcome: the fraction of
/// shots that produced exactly `ideal_outcome` (paper Fig 7's POS).
#[must_use]
pub fn probability_of_success(counts: &Counts, ideal_outcome: u64) -> f64 {
    counts.frequency(ideal_outcome)
}

/// Build the QFT fidelity benchmark used for Fig 7: prepare |+...+> with a
/// layer of Hadamards, apply the inverse QFT (which maps it to |0...0>),
/// and measure. Ideal outcome: the all-zeros word.
#[must_use]
pub fn qft_pos_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n).named(format!("qft_pos_{n}"));
    for q in 0..n {
        c.h(q);
    }
    let inverse = qcs_circuit::library::qft(n).inverse();
    c.extend_from(&inverse)
        .expect("inverse QFT fits the same register");
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_calibration::NoiseProfile;
    use qcs_topology::families;

    fn noiseless_snapshot(n: usize) -> CalibrationSnapshot {
        let profile = NoiseProfile {
            mean_1q_error: 1e-6,
            mean_cx_error: 1e-6,
            mean_readout_error: 1e-6,
            temporal_cov: 0.0,
            spatial_cov_cx: 0.0,
            spatial_cov_coherence: 0.0,
            ..NoiseProfile::with_seed(0)
        };
        profile.snapshot(&families::complete(n.max(2)), 0)
    }

    fn noisy_snapshot(n: usize, scale: f64) -> CalibrationSnapshot {
        NoiseProfile::with_seed(1)
            .scaled_errors(scale)
            .snapshot(&families::complete(n.max(2)), 0)
    }

    #[test]
    fn qft_pos_circuit_is_deterministic_ideally() {
        let c = qft_pos_circuit(3);
        let dist = clbit_distribution(&c).unwrap();
        assert!((dist[0] - 1.0).abs() < 1e-9, "dist {dist:?}");
    }

    #[test]
    fn noiseless_run_gives_full_pos() {
        let c = qft_pos_circuit(3);
        let sim = NoisySimulator::with_seed(7);
        let counts = sim.run(&c, &noiseless_snapshot(3), 2048).unwrap();
        assert_eq!(counts.total(), 2048);
        assert!(probability_of_success(&counts, 0) > 0.99);
    }

    #[test]
    fn noise_reduces_pos() {
        let c = qft_pos_circuit(4);
        let sim = NoisySimulator::with_seed(7);
        let clean = sim.run(&c, &noiseless_snapshot(4), 2048).unwrap();
        let noisy = sim.run(&c, &noisy_snapshot(4, 3.0), 2048).unwrap();
        let pos_clean = probability_of_success(&clean, 0);
        let pos_noisy = probability_of_success(&noisy, 0);
        assert!(
            pos_noisy < pos_clean - 0.05,
            "clean {pos_clean} noisy {pos_noisy}"
        );
    }

    #[test]
    fn more_noise_lower_pos() {
        let c = qft_pos_circuit(4);
        let sim = NoisySimulator::with_seed(3);
        let mild = sim.run(&c, &noisy_snapshot(4, 1.0), 4096).unwrap();
        let harsh = sim.run(&c, &noisy_snapshot(4, 6.0), 4096).unwrap();
        assert!(
            probability_of_success(&harsh, 0) < probability_of_success(&mild, 0),
        );
    }

    #[test]
    fn readout_error_flips_bits() {
        // Pure readout noise on an identity circuit.
        let mut c = Circuit::new(2);
        c.measure_all();
        let profile = NoiseProfile {
            mean_1q_error: 1e-9,
            mean_cx_error: 1e-9,
            mean_readout_error: 0.25,
            temporal_cov: 0.0,
            spatial_cov_cx: 0.0,
            spatial_cov_coherence: 0.0,
            ..NoiseProfile::with_seed(0)
        };
        let snap = profile.snapshot(&families::complete(2), 0);
        let counts = NoisySimulator::with_seed(1).run(&c, &snap, 8192).unwrap();
        let pos = probability_of_success(&counts, 0);
        // Expect ~(1-0.25)^2 = 0.5625.
        assert!((pos - 0.5625).abs() < 0.05, "pos {pos}");
    }

    #[test]
    fn deterministic_given_seed() {
        let c = qft_pos_circuit(3);
        let snap = noisy_snapshot(3, 2.0);
        let a = NoisySimulator::with_seed(9).run(&c, &snap, 512).unwrap();
        let b = NoisySimulator::with_seed(9).run(&c, &snap, 512).unwrap();
        assert_eq!(a, b);
        let c2 = NoisySimulator::with_seed(10).run(&c, &snap, 512).unwrap();
        assert_ne!(a, c2);
    }

    #[test]
    fn decoherence_reduces_pos() {
        let c = qft_pos_circuit(4);
        let snap = noisy_snapshot(4, 1.0);
        let plain = NoisySimulator::with_seed(3).run(&c, &snap, 4096).unwrap();
        let decohering = NoisySimulator::with_seed(3)
            .with_decoherence()
            .run(&c, &snap, 4096)
            .unwrap();
        let pos_plain = probability_of_success(&plain, 0);
        let pos_deco = probability_of_success(&decohering, 0);
        assert!(
            pos_deco < pos_plain,
            "decoherence should hurt: {pos_deco} vs {pos_plain}"
        );
    }

    #[test]
    fn decoherence_negligible_for_long_coherence() {
        // T1/T2 of seconds: decoherence must be invisible.
        let profile = NoiseProfile {
            mean_t1_us: 1e9,
            mean_t2_us: 1e9,
            mean_1q_error: 1e-9,
            mean_cx_error: 1e-9,
            mean_readout_error: 1e-9,
            temporal_cov: 0.0,
            spatial_cov_cx: 0.0,
            spatial_cov_coherence: 0.0,
            ..NoiseProfile::with_seed(0)
        };
        let snap = profile.snapshot(&families::complete(3), 0);
        let c = qft_pos_circuit(3);
        let counts = NoisySimulator::with_seed(1)
            .with_decoherence()
            .run(&c, &snap, 2048)
            .unwrap();
        assert!(probability_of_success(&counts, 0) > 0.99);
    }

    #[test]
    fn measurement_map_last_wins() {
        let mut c = Circuit::new(2);
        c.measure(0, 0).measure(0, 1);
        assert_eq!(measurement_map(&c), vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "shots must be positive")]
    fn zero_shots_rejected() {
        let c = qft_pos_circuit(2);
        let _ = NoisySimulator::default().run(&c, &noiseless_snapshot(2), 0);
    }

    #[test]
    fn counts_invariant_under_thread_count() {
        // The determinism guarantee of the execution engine: same seed +
        // same circuit => bit-identical Counts at 1, 2, and 8 threads.
        let c = qft_pos_circuit(4);
        let snap = noisy_snapshot(4, 2.0);
        let sim = NoisySimulator {
            trajectories: 16,
            seed: 5,
            ..NoisySimulator::default()
        };
        let reference = sim.with_threads(1).run(&c, &snap, 4096).unwrap();
        for threads in [2, 8] {
            let counts = sim.with_threads(threads).run(&c, &snap, 4096).unwrap();
            assert_eq!(reference, counts, "diverged at {threads} threads");
        }
    }

    #[test]
    fn shots_distributed_across_trajectories() {
        let c = qft_pos_circuit(2);
        let sim = NoisySimulator {
            trajectories: 7,
            ..NoisySimulator::default()
        };
        let counts = sim.run(&c, &noiseless_snapshot(2), 100).unwrap();
        assert_eq!(counts.total(), 100);
    }
}
