//! Unitary equivalence checking up to global phase.
//!
//! Distribution comparison (see [`crate::clbit_distribution`]) cannot see
//! relative phases; this module catches phase bugs by driving both
//! circuits with random product states and comparing full state overlap.

use qcs_circuit::{Circuit, Gate, Instruction, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{SimError, Statevector};

/// Whether two circuits implement the same unitary up to global phase,
/// tested on `trials` Haar-ish random product input states.
///
/// Both circuits must have the same width; measurements and barriers are
/// ignored (only the unitary part is compared). A deterministic result
/// for a given seed.
///
/// # Errors
///
/// Returns [`SimError`] if either circuit cannot be simulated.
///
/// # Panics
///
/// Panics if the circuits have different widths or `trials == 0`.
///
/// # Examples
///
/// ```
/// use qcs_circuit::Circuit;
/// use qcs_sim::equivalent_unitaries;
///
/// let mut a = Circuit::new(1);
/// a.h(0).h(0); // identity
/// let identity = Circuit::new(1);
/// assert!(equivalent_unitaries(&a, &identity, 8, 1)?);
///
/// let mut b = Circuit::new(1);
/// b.x(0);
/// assert!(!equivalent_unitaries(&b, &identity, 8, 1)?);
/// # Ok::<(), qcs_sim::SimError>(())
/// ```
pub fn equivalent_unitaries(
    a: &Circuit,
    b: &Circuit,
    trials: usize,
    seed: u64,
) -> Result<bool, SimError> {
    assert_eq!(a.num_qubits(), b.num_qubits(), "width mismatch");
    assert!(trials > 0, "need at least one trial");
    let n = a.num_qubits();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..trials {
        // Random product-state preparation prefix.
        let mut prep = Circuit::new(n.max(1));
        for q in 0..n {
            let theta = rng.gen_range(0.0..std::f64::consts::PI);
            let phi = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
            let lambda = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
            prep.push(Instruction::gate(Gate::U(theta, phi, lambda), &[Qubit::from(q)]));
        }
        let state_a = run_unitary(&prep, a)?;
        let state_b = run_unitary(&prep, b)?;
        if (state_a.overlap(&state_b) - 1.0).abs() > 1e-9 {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Run `prep` then the unitary part of `circuit`.
fn run_unitary(prep: &Circuit, circuit: &Circuit) -> Result<Statevector, SimError> {
    let mut state = Statevector::from_circuit(prep)?;
    for inst in circuit.instructions() {
        if inst.gate.is_unitary() && !inst.gate.is_directive() {
            state.apply(inst)?;
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::library;

    #[test]
    fn identity_decompositions() {
        // S S = Z, T T = S, H X H = Z, up to global phase.
        let mut ss = Circuit::new(1);
        ss.s(0).s(0);
        let mut z = Circuit::new(1);
        z.z(0);
        assert!(equivalent_unitaries(&ss, &z, 8, 1).unwrap());

        let mut hxh = Circuit::new(1);
        hxh.h(0).x(0).h(0);
        assert!(equivalent_unitaries(&hxh, &z, 8, 2).unwrap());
    }

    #[test]
    fn swap_equals_three_cx() {
        let mut swap = Circuit::new(2);
        swap.swap(0, 1);
        let mut cxs = Circuit::new(2);
        cxs.cx(0, 1).cx(1, 0).cx(0, 1);
        assert!(equivalent_unitaries(&swap, &cxs, 8, 3).unwrap());
    }

    #[test]
    fn cz_symmetry() {
        let mut ab = Circuit::new(2);
        ab.cz(0, 1);
        let mut ba = Circuit::new(2);
        ba.cz(1, 0);
        assert!(equivalent_unitaries(&ab, &ba, 8, 4).unwrap());
    }

    #[test]
    fn cx_direction_matters() {
        let mut ab = Circuit::new(2);
        ab.cx(0, 1);
        let mut ba = Circuit::new(2);
        ba.cx(1, 0);
        assert!(!equivalent_unitaries(&ab, &ba, 8, 5).unwrap());
    }

    #[test]
    fn rz_vs_phase_differ_only_globally() {
        // rz(t) = e^{-it/2} p(t): equal up to global phase.
        let t = 0.731;
        let mut rz = Circuit::new(1);
        rz.rz(t, 0);
        let mut u = Circuit::new(1);
        u.apply(Gate::U(0.0, 0.0, t), &[0]); // the phase gate p(t)
        assert!(equivalent_unitaries(&rz, &u, 8, 6).unwrap());
    }

    #[test]
    fn inverse_composition_is_identity() {
        let qft = library::qft(3);
        let mut both = Circuit::new(3);
        for inst in qft.instructions() {
            if inst.gate.is_unitary() {
                both.push(inst.clone());
            }
        }
        both.extend_from(&qft.inverse()).unwrap();
        let identity = Circuit::new(3);
        assert!(equivalent_unitaries(&both, &identity, 6, 7).unwrap());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = equivalent_unitaries(&Circuit::new(1), &Circuit::new(2), 1, 0);
    }
}
