//! Measurement result histograms, as returned to cloud clients.

use std::collections::HashMap;
use std::fmt;

/// A histogram of measured classical bit-strings.
///
/// Keys are clbit words (bit `i` = classical bit `i`); the paper's
/// "Results" object (§II-B ⑥): one count of bitstrings per executed
/// circuit.
///
/// Storage is a hash map (O(1) recording on the simulator's shot loop);
/// every observable order — [`Counts::iter`], [`fmt::Display`], the
/// Hellinger accumulation — is sorted by outcome word, so results stay
/// bit-reproducible run to run. Counters saturate instead of overflowing
/// for pathological shot counts.
///
/// # Examples
///
/// ```
/// use qcs_sim::Counts;
///
/// let mut counts = Counts::new(2);
/// counts.record(0b11, 3);
/// counts.record(0b00, 1);
/// assert_eq!(counts.total(), 4);
/// assert_eq!(counts.frequency(0b11), 0.75);
/// assert_eq!(Counts::to_bitstring(0b01, 2), "01");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    width: usize,
    histogram: HashMap<u64, u64>,
}

impl Counts {
    /// An empty histogram over `width` classical bits.
    #[must_use]
    pub fn new(width: usize) -> Self {
        Counts {
            width,
            histogram: HashMap::new(),
        }
    }

    /// An empty histogram pre-sized for an expected number of shots: the
    /// map reserves `min(expected_shots, 2^width)` slots up front — the
    /// bitstring cardinality bounds how many distinct outcomes can ever
    /// appear, so wide registers don't over-allocate and narrow ones
    /// never rehash mid-loop.
    #[must_use]
    pub fn with_capacity(width: usize, expected_shots: usize) -> Self {
        Counts {
            width,
            histogram: HashMap::with_capacity(Self::outcome_bound(width, expected_shots)),
        }
    }

    /// `min(expected, 2^width)` without overflowing for wide registers.
    fn outcome_bound(width: usize, expected: usize) -> usize {
        match 1usize.checked_shl(width as u32) {
            Some(cardinality) => expected.min(cardinality),
            None => expected,
        }
    }

    /// Number of classical bits per outcome.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Add `n` observations of `outcome` (saturating at `u64::MAX`).
    pub fn record(&mut self, outcome: u64, n: u64) {
        let slot = self.histogram.entry(outcome).or_insert(0);
        *slot = slot.saturating_add(n);
    }

    /// Total shots recorded (saturating at `u64::MAX`).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.histogram
            .values()
            .fold(0u64, |acc, &v| acc.saturating_add(v))
    }

    /// Count of a specific outcome.
    #[must_use]
    pub fn count(&self, outcome: u64) -> u64 {
        self.histogram.get(&outcome).copied().unwrap_or(0)
    }

    /// Relative frequency of `outcome` (0 if no shots recorded).
    #[must_use]
    pub fn frequency(&self, outcome: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / total as f64
        }
    }

    /// The most frequent outcome, if any (ties broken by smaller word).
    #[must_use]
    pub fn most_common(&self) -> Option<u64> {
        self.histogram
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&k, _)| k)
    }

    /// Iterate `(outcome, count)` in ascending outcome order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &u64)> {
        let mut entries: Vec<(&u64, &u64)> = self.histogram.iter().collect();
        entries.sort_unstable_by_key(|(k, _)| **k);
        entries.into_iter()
    }

    /// Number of distinct outcomes observed.
    #[must_use]
    pub fn num_outcomes(&self) -> usize {
        self.histogram.len()
    }

    /// Merge another histogram into this one. The map is pre-sized for
    /// the incoming outcomes (bounded by the bitstring cardinality) so
    /// the per-trajectory merge loop in the noisy simulator never rehashes
    /// more than once; counters saturate instead of overflowing.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(self.width, other.width, "width mismatch");
        let incoming = Self::outcome_bound(self.width, other.num_outcomes())
            .saturating_sub(self.histogram.len());
        self.histogram.reserve(incoming);
        for (&k, &v) in &other.histogram {
            self.record(k, v);
        }
    }

    /// Render an outcome word as a bitstring, most-significant bit first.
    #[must_use]
    pub fn to_bitstring(outcome: u64, width: usize) -> String {
        (0..width)
            .rev()
            .map(|b| if (outcome >> b) & 1 == 1 { '1' } else { '0' })
            .collect()
    }

    /// Hellinger fidelity against an ideal probability vector indexed by
    /// outcome word: `(sum_k sqrt(p_k * q_k))^2`.
    ///
    /// # Panics
    ///
    /// Panics if `ideal.len() != 2^width`.
    #[must_use]
    pub fn hellinger_fidelity(&self, ideal: &[f64]) -> f64 {
        assert_eq!(ideal.len(), 1usize << self.width, "ideal length mismatch");
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        // Accumulate in sorted outcome order: float summation order must
        // not depend on hash-map iteration order.
        let mut sum = 0.0;
        for (&k, &v) in self.iter() {
            let p = v as f64 / total as f64;
            let q = ideal.get(k as usize).copied().unwrap_or(0.0);
            sum += (p * q).sqrt();
        }
        sum * sum
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (&k, &v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {v}", Counts::to_bitstring(k, self.width))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(3);
        c.record(0b101, 5);
        c.record(0b101, 2);
        c.record(0b000, 3);
        assert_eq!(c.total(), 10);
        assert_eq!(c.count(0b101), 7);
        assert_eq!(c.frequency(0b000), 0.3);
        assert_eq!(c.most_common(), Some(0b101));
        assert_eq!(c.num_outcomes(), 2);
    }

    #[test]
    fn empty_counts() {
        let c = Counts::new(2);
        assert_eq!(c.total(), 0);
        assert_eq!(c.frequency(0), 0.0);
        assert_eq!(c.most_common(), None);
    }

    #[test]
    fn merge_adds() {
        let mut a = Counts::new(2);
        a.record(0b01, 2);
        let mut b = Counts::new(2);
        b.record(0b01, 3);
        b.record(0b10, 1);
        a.merge(&b);
        assert_eq!(a.count(0b01), 5);
        assert_eq!(a.count(0b10), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_width_mismatch() {
        let mut a = Counts::new(2);
        a.merge(&Counts::new(3));
    }

    #[test]
    fn bitstring_rendering() {
        assert_eq!(Counts::to_bitstring(0b110, 3), "110");
        assert_eq!(Counts::to_bitstring(0, 4), "0000");
        let mut c = Counts::new(2);
        c.record(0b10, 1);
        assert_eq!(c.to_string(), "{10: 1}");
    }

    #[test]
    fn iter_is_sorted_by_outcome() {
        let mut c = Counts::new(4);
        for k in [9u64, 3, 12, 0, 7] {
            c.record(k, 1);
        }
        let keys: Vec<u64> = c.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, vec![0, 3, 7, 9, 12]);
    }

    #[test]
    fn with_capacity_bounds_by_cardinality() {
        // 2-bit register: at most 4 outcomes no matter how many shots.
        let c = Counts::with_capacity(2, 1_000_000);
        assert!(c.histogram.capacity() < 64, "over-allocated for width 2");
        // A wide register must not overflow the shift.
        let w = Counts::with_capacity(64, 128);
        assert_eq!(w.width(), 64);
    }

    #[test]
    fn record_saturates_instead_of_overflowing() {
        let mut c = Counts::new(1);
        c.record(0, u64::MAX - 1);
        c.record(0, 5); // would overflow; must clamp
        assert_eq!(c.count(0), u64::MAX);
        c.record(1, 3);
        assert_eq!(c.total(), u64::MAX, "total saturates too");
        let mut other = Counts::new(1);
        other.record(0, 10);
        c.merge(&other); // merge into a saturated slot stays saturated
        assert_eq!(c.count(0), u64::MAX);
    }

    #[test]
    fn hellinger_perfect_match() {
        let mut c = Counts::new(1);
        c.record(0, 50);
        c.record(1, 50);
        let f = c.hellinger_fidelity(&[0.5, 0.5]);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hellinger_mismatch() {
        let mut c = Counts::new(1);
        c.record(0, 100);
        let f = c.hellinger_fidelity(&[0.0, 1.0]);
        assert!(f.abs() < 1e-12);
    }
}
