//! Fig 3: sorted queuing times of study jobs (paper anchors: ~20% under a
//! minute, median ~60 min, >30% over 2 h, ~10% a day or longer).

use qcs_bench::{percentile_table, study_from_args, write_csv};

fn main() {
    let study = study_from_args();
    let sorted = study.queue_times_sorted_min();
    println!("Fig 3 — sorted queue times (minutes)");
    println!("  {}", percentile_table(&sorted, "min"));
    let (under_min, median, over_2h, over_day) = study.queue_time_anchors();
    println!("  anchors: {:.1}% <1min (paper ~20%)", 100.0 * under_min);
    println!("           median {median:.1} min (paper ~60 min)");
    println!("           {:.1}% >2h (paper >30%)", 100.0 * over_2h);
    println!("           {:.1}% >=1 day (paper ~10%)", 100.0 * over_day);
    write_csv(
        "fig03_queue_sorted.csv",
        "rank,queue_minutes",
        sorted.iter().enumerate().map(|(i, q)| format!("{i},{q}")),
    );
}
