//! Bounded-memory million-job smoke gate.
//!
//! Streams a [`PopulationTrace`] (Zipf-activity population, Poisson
//! arrivals) through a sharded [`FleetSim`] in fixed-size chunks, with a
//! cross-shard fair-share reconcile per chunk, and asserts the structural
//! O(1)-in-job-count memory properties of the streaming pipeline:
//!
//! - no terminal record is ever materialized (`records_len() == 0`);
//! - the arrival heap never holds more than one chunk of submissions;
//! - per-shard reservoirs stay at their fixed capacity;
//! - the cross-shard charged-vs-executed conservation audit passes;
//! - every submitted job is folded exactly once into the aggregates.
//!
//! Run with `--jobs N` to shrink the trace (ci smoke uses the full 10⁶).
//! Prints throughput, outcome mix, p99 queue time, and peak RSS.

use std::time::Instant;

use qcs_cloud::{CloudConfig, RecordSink};
use qcs_gateway::FleetSim;
use qcs_machine::Fleet;
use qcs_workload::{PopulationConfig, PopulationTrace};

const SHARDS: usize = 4;
const CHUNK: usize = 20_000;

/// Current resident set size in MiB, from `/proc/self/status` (`None`
/// off-Linux).
fn vm_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn parse_jobs() -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let value = args.next().expect("--jobs needs a value");
                return value.parse().expect("--jobs needs an integer");
            }
            "--smoke" => return 50_000,
            other => panic!("unknown argument {other}; expected --jobs N or --smoke"),
        }
    }
    1_000_000
}

fn main() {
    let jobs = parse_jobs();
    let population = PopulationConfig {
        jobs,
        ..PopulationConfig::million()
    };
    let fleet = Fleet::ibm_like();
    let config = CloudConfig {
        num_providers: population.providers,
        record_sink: RecordSink::streaming(population.seed),
        ..CloudConfig::default()
    };
    let mut sim = FleetSim::new(&fleet, config, SHARDS);
    let mut trace = PopulationTrace::new(&fleet, population);

    let started = Instant::now();
    let mut submitted = 0u64;
    let mut peak_pending = 0usize;
    let mut peak_rss_mib: f64 = 0.0;
    loop {
        let mut last_submit_s = 0.0;
        let mut in_chunk = 0usize;
        for job in trace.by_ref().take(CHUNK) {
            last_submit_s = job.submit_s;
            sim.submit(job).expect("chunked submit admits every job");
            in_chunk += 1;
        }
        if in_chunk == 0 {
            break;
        }
        submitted += in_chunk as u64;
        // The arrival heap holds at most the chunk we just pushed.
        peak_pending = peak_pending.max(sim.pending_arrivals());
        sim.step_until(last_submit_s);
        sim.reconcile();
        assert_eq!(sim.records_len(), 0, "streaming sink materialized records");
        if let Some(rss) = vm_rss_mib() {
            peak_rss_mib = peak_rss_mib.max(rss);
        }
        if submitted % 200_000 == 0 {
            eprintln!(
                "  ... {submitted} submitted, sim day {:.1}, {:.0}s elapsed",
                last_submit_s / 86_400.0,
                started.elapsed().as_secs_f64()
            );
        }
    }
    sim.run_to_completion();
    sim.reconcile();
    let elapsed = started.elapsed();

    assert_eq!(submitted, jobs, "trace emitted every configured job");
    assert!(
        peak_pending <= CHUNK,
        "arrival heap grew past one chunk: {peak_pending}"
    );
    assert_eq!(sim.records_len(), 0, "streaming sink materialized records");
    let [completed, errored, cancelled] = sim.outcome_counts();
    assert_eq!(
        completed + errored + cancelled,
        jobs,
        "every job reached a terminal outcome"
    );
    sim.audit_conservation()
        .expect("cross-shard charged == executed");
    let mut folded = 0u64;
    let mut p99_queue_s: f64 = 0.0;
    for shard in sim.shards() {
        let aggregates = shard
            .streaming_aggregates()
            .expect("streaming sink populates aggregates");
        folded += aggregates.folded();
        assert!(
            aggregates.queue_time_samples().len() <= 512,
            "reservoir exceeded its fixed capacity"
        );
        p99_queue_s = p99_queue_s.max(aggregates.queue_time_p99().unwrap_or(0.0));
    }
    assert_eq!(folded, jobs, "every job folded exactly once");
    if let Some(rss) = vm_rss_mib() {
        peak_rss_mib = peak_rss_mib.max(rss);
        let ceiling: f64 = std::env::var("QCS_SMOKE_MAX_RSS_MIB")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(512.0);
        assert!(
            peak_rss_mib < ceiling,
            "peak RSS {peak_rss_mib:.0} MiB exceeds {ceiling:.0} MiB ceiling"
        );
    }

    let jobs_per_s = jobs as f64 / elapsed.as_secs_f64();
    println!(
        "PASS million-job smoke: {jobs} jobs / {SHARDS} shards in {:.1}s ({jobs_per_s:.0} jobs/s)",
        elapsed.as_secs_f64()
    );
    println!(
        "  outcomes: {completed} completed, {errored} errored, {cancelled} cancelled (patience {:.0}h)",
        population.patience_hours
    );
    println!(
        "  p99 queue time {:.2}h; peak pending arrivals {peak_pending}; peak RSS {:.0} MiB",
        p99_queue_s / 3600.0,
        peak_rss_mib
    );
}
