//! Run the cloud study end to end and print the headline numbers behind
//! every queuing/execution figure of the paper.
//!
//! ```sh
//! cargo run --release --example cloud_campaign           # 2-week smoke run
//! cargo run --release --example cloud_campaign -- --full # full 2-year study
//! ```

use qcs::{Study, StudyConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let export = std::env::args().any(|a| a == "--export");
    let config = if full {
        StudyConfig::full()
    } else {
        StudyConfig::smoke()
    };
    println!(
        "running {} study ({} days, {} study jobs)...",
        if full { "FULL" } else { "smoke" },
        config.workload.days,
        config.workload.study_jobs
    );
    let started = std::time::Instant::now();
    let study = Study::run(&config);
    println!(
        "simulated {} jobs in {:?}\n",
        study.result().total_jobs,
        started.elapsed()
    );

    // Fig 2: growth and outcomes.
    let cumulative = study.cumulative_study_executions();
    if let Some(&(last_day, total)) = cumulative.last() {
        let quarter = cumulative[cumulative.len() / 4].1;
        println!(
            "Fig 2a  study executions: {:.2}B by day {last_day} ({:.2}B by 1st quarter); whole population {:.1}B",
            total as f64 / 1e9,
            quarter as f64 / 1e9,
            study.cumulative_executions().last().map_or(0.0, |&(_, t)| t as f64 / 1e9)
        );
    }
    let (completed, errored, cancelled) = study.outcome_fractions();
    println!(
        "Fig 2b  outcomes: {:.1}% completed, {:.1}% errored, {:.1}% cancelled",
        100.0 * completed,
        100.0 * errored,
        100.0 * cancelled
    );

    // Fig 3: queue-time anchors.
    let (under_min, median_min, over_2h, over_day) = study.queue_time_anchors();
    println!(
        "Fig 3   queue times: {:.0}% <1min | median {:.0} min | {:.0}% >2h | {:.0}% >=1 day",
        100.0 * under_min,
        median_min,
        100.0 * over_2h,
        100.0 * over_day
    );

    // Fig 4: queue/exec ratios.
    let ratios = study.queue_exec_ratios_sorted();
    if !ratios.is_empty() {
        let frac_le_1 = ratios.iter().filter(|&&r| r <= 1.0).count() as f64 / ratios.len() as f64;
        let frac_ge_100 =
            ratios.iter().filter(|&&r| r >= 100.0).count() as f64 / ratios.len() as f64;
        println!(
            "Fig 4   queue/exec ratio: {:.0}% <=1x | median {:.1}x | {:.0}% >=100x",
            100.0 * frac_le_1,
            qcs::stats::median(&ratios),
            100.0 * frac_ge_100
        );
    }

    // Fig 8: utilization extremes.
    println!("Fig 8   machine utilization (median of circuit width / machine size):");
    for (name, violin) in study.utilization_by_machine() {
        println!(
            "          {name:<12} median {:>5.2}  (n={})",
            violin.summary.median, violin.summary.count
        );
    }

    // Fig 9: pending jobs per machine.
    println!("Fig 9   mean pending jobs (last week):");
    for (name, qubits, public, pending) in study.pending_jobs_by_machine() {
        println!(
            "          {name:<12} {qubits:>2}q {} {pending:>8.1}",
            if public { "public    " } else { "privileged" }
        );
    }

    // Fig 10/13: per-machine distributions.
    println!("Fig 10  queue time by machine (hours):");
    for (name, violin) in study.queue_time_by_machine() {
        let s = violin.summary;
        println!(
            "          {name:<12} q1 {:>7.2}  median {:>7.2}  q3 {:>7.2}  max {:>8.1}",
            s.q1, s.median, s.q3, s.max
        );
    }
    println!("Fig 13  exec time by machine (minutes):");
    for (name, violin) in study.exec_time_by_machine() {
        let s = violin.summary;
        println!(
            "          {name:<12} q1 {:>6.2}  median {:>6.2}  q3 {:>6.2}  max {:>7.1}",
            s.q1, s.median, s.q3, s.max
        );
    }

    // Fig 11: batching.
    println!("Fig 11  queue time vs batch size (medians, minutes):");
    for (bucket, per_job, per_circuit, n) in study.queue_time_vs_batch() {
        println!(
            "          batch {bucket:<8} per-job {per_job:>7.1}  per-circuit {per_circuit:>8.3}  (n={n})"
        );
    }

    // Fig 12a.
    println!(
        "Fig 12a {:.1}% of executed jobs crossed a calibration boundary",
        100.0 * study.calibration_crossover_fraction()
    );

    // Fig 14: runtime vs batch.
    let points = study.runtime_vs_batch();
    let small: Vec<f64> = points
        .iter()
        .filter(|(b, _)| *b <= 10)
        .map(|(_, t)| *t)
        .collect();
    let large: Vec<f64> = points
        .iter()
        .filter(|(b, _)| *b >= 450)
        .map(|(_, t)| *t)
        .collect();
    println!(
        "Fig 14  median runtime: batch<=10 -> {:.1} min | batch>=450 -> {:.1} min ({} jobs)",
        qcs::stats::median(&small),
        qcs::stats::median(&large),
        points.len()
    );

    if export {
        let path = "target/figures/study_trace.csv";
        std::fs::create_dir_all("target/figures").expect("create figures dir");
        let file = std::fs::File::create(path).expect("create trace file");
        qcs::cloud::trace::write_records(
            std::io::BufWriter::new(file),
            &study
                .result()
                .records
                .iter()
                .filter(|r| r.is_study)
                .cloned()
                .collect::<Vec<_>>(),
        )
        .expect("write trace");
        println!("\nexported study trace to {path}");
    }

    // Figs 15/16: predictability.
    let prediction = study.prediction_study(42);
    println!(
        "Fig 15  runtime prediction: overall Pearson {:.3}; per machine:",
        prediction.overall_correlation
    );
    for eval in &prediction.per_machine {
        println!(
            "          {:<12} corr {:.3} over {} test jobs",
            study.machine_name(eval.machine),
            eval.correlation,
            eval.test_jobs
        );
    }
}
