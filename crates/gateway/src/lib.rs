//! # qcs-gateway
//!
//! A live job-submission service fronting the `qcs-cloud` simulator: the
//! reproduction's stand-in for the IBM Quantum cloud *endpoint* that the
//! paper's users submit against. Where `qcs-cloud::Simulation` replays a
//! finished trace, the gateway runs the same engine **online** — a
//! [`LiveCloud`](qcs_cloud::LiveCloud) advanced in real time (scaled by a
//! configurable compression factor) while TCP clients submit, poll,
//! cancel, and observe queue depths over a newline-delimited protocol.
//!
//! Layers:
//!
//! - [`protocol`] — the wire grammar ([`Request`] / [`Response`]), shared
//!   verbatim by server and client.
//! - [`error`] — the taxonomy: wire [`ErrorCode`]s, parse-level
//!   [`ProtocolError`]s, client-side [`GatewayError`]s. Untrusted input
//!   maps onto these instead of panicking (`clippy::unwrap_used` /
//!   `expect_used` are denied outside tests).
//! - [`ratelimit`] — per-provider [`TokenBucket`]s in simulation time.
//! - [`metrics`] — the [`GatewayMetrics`] counters behind `METRICS`.
//! - [`fault`] — deterministic, content-keyed fault injection
//!   ([`FaultPlan`]): connection drops, garbled lines, truncated and
//!   stalled writes, handler panics, machine outages. Drives
//!   `tests/chaos_gateway.rs`.
//! - [`retry`] — bounded [`RetryPolicy`] with seeded-jitter exponential
//!   backoff (SplitMix64-derived, reproducible per attempt).
//! - [`server`] — [`Gateway`]: accept loop on a `qcs-exec`
//!   [`WorkerPool`](qcs_exec::WorkerPool), per-connection handlers with
//!   read timeouts / idle reaping / line-length caps, admission control
//!   (validate → rate-limit → backpressure), graceful
//!   [`shutdown_and_drain`](Gateway::shutdown_and_drain).
//! - [`client`] — [`GatewayClient`] (typed errors, read timeouts,
//!   reconnect, [`request_with_retry`](GatewayClient::request_with_retry))
//!   plus a [`LoadGenerator`] that replays `qcs-workload` traces at a
//!   wall-clock compression factor.
//! - **online prediction** — every shard taps its
//!   [`LiveCloud`](qcs_cloud::LiveCloud)'s terminal records into a
//!   `qcs-predictor` [`OnlinePredictor`](qcs_predictor::OnlinePredictor);
//!   `PREDICT <machine> <circuits> <shots>` answers a queue-wait point
//!   estimate with a 10–90% band, and `METRICS` carries live accuracy
//!   counters (`predictor_observed`, `predictor_mae_min`,
//!   `predictor_band_coverage`).
//! - [`fleet`] — the scale-out layer: [`ShardMap`] partitioning,
//!   [`GatewayFleet`] (N TCP gateways) / [`FleetSim`] (the same sharding
//!   in-process, simulation-time-driven), [`FleetClient`] routing, and
//!   periodic cross-shard fair-share reconciliation preserving the
//!   charged-seconds conservation law.
//!
//! # Examples
//!
//! ```
//! use qcs_cloud::CloudConfig;
//! use qcs_gateway::{Gateway, GatewayClient, GatewayConfig};
//! use qcs_machine::Fleet;
//!
//! let gateway = Gateway::start(
//!     Fleet::ibm_like(),
//!     CloudConfig::default(),
//!     GatewayConfig { time_compression: 0.0, ..GatewayConfig::default() },
//! )
//! .unwrap();
//! let mut client = GatewayClient::connect(gateway.addr()).unwrap();
//! let response = client
//!     .request(&"SUBMIT 0 1 10 1024 20 3".parse::<qcs_gateway::Request>().unwrap())
//!     .unwrap();
//! assert_eq!(response.to_string(), "OK 0");
//! assert_eq!(client.queue_depth("1").unwrap(), 1);
//! client.quit().unwrap();
//! let (result, metrics) = gateway.shutdown_and_drain();
//! assert_eq!(metrics.accepted, 1);
//! assert_eq!(result.total_jobs, 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
// The serving stack must not panic on anything a peer can send. Tests
// may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod error;
pub mod fault;
pub mod fleet;
pub mod metrics;
pub mod protocol;
pub mod ratelimit;
pub mod retry;
pub mod server;

pub use client::{GatewayClient, LoadGenerator, PredictEstimate, ReplayReport, DEFAULT_READ_TIMEOUT};
pub use error::{ErrorCode, GatewayError, ProtocolError};
pub use fault::{FaultKind, FaultPlan};
pub use fleet::{check_conservation, FleetClient, FleetSim, GatewayFleet, ShardMap};
pub use metrics::GatewayMetrics;
pub use protocol::{Request, Response};
pub use ratelimit::TokenBucket;
pub use retry::{RetryPolicy, RetryStats};
pub use server::{Gateway, GatewayConfig};
