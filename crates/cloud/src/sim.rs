//! The discrete-event simulator of the quantum cloud.
//!
//! Each machine is a single server fed by a [`FairShareQueue`]. Jobs
//! arrive at their submission times, wait, execute for a duration given by
//! the machine's [`qcs_machine::ExecutionCostModel`] (plus small stochastic
//! variation), and leave a [`JobRecord`]. Impatient users cancel queued
//! jobs; a small fraction of executions error out (paper Fig 2b). Queue
//! lengths are sampled periodically (Fig 9).
//!
//! Full-study runs process millions of background jobs; to keep memory
//! proportional to what the analysis needs, per-job records can be
//! *sampled* for background jobs (study jobs are always recorded) while
//! aggregate counters (job totals, outcome counts, daily execution counts)
//! cover the entire population.

use qcs_machine::Fleet;

use crate::{
    Discipline, JobOutcome, JobRecord, JobSpec, OutagePlan, QueueSample, StreamingAggregates,
};

/// Where terminal [`JobRecord`]s go.
///
/// The default ([`Exact`](RecordSink::Exact)) accumulates every kept
/// record in [`SimulationResult::records`] — the bit-exact path every
/// existing analysis and the audit oracle run on. The
/// [`Streaming`](RecordSink::Streaming) sink instead folds each record
/// into [`StreamingAggregates`] at its terminal event and discards it,
/// bounding memory for million-job campaigns (records, and therefore
/// [`LiveCloud::drain_new_records`](crate::LiveCloud::drain_new_records),
/// stay empty; aggregates and queue samples are unaffected).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RecordSink {
    /// Keep records in memory (current behavior; the audit oracle).
    #[default]
    Exact,
    /// Fold records into constant-memory sketches and drop them.
    Streaming {
        /// Raw points retained per violin reservoir.
        reservoir_capacity: u32,
        /// Seed for the reservoirs' replacement decisions.
        reservoir_seed: u64,
    },
}

impl RecordSink {
    /// A streaming sink with a 512-point reservoir per metric.
    #[must_use]
    pub fn streaming(seed: u64) -> Self {
        RecordSink::Streaming {
            reservoir_capacity: 512,
            reservoir_seed: seed,
        }
    }
}

/// Which event-engine data structures [`LiveCloud`](crate::LiveCloud)
/// runs on.
///
/// Both engines are *bit-identical* in every observable output — records,
/// queue samples, aggregates, audit reports — which
/// `tests/properties.rs::des_matches_reference` locks across disciplines
/// and outage plans. The reference engine exists so the overhauled hot
/// path always has an in-process twin to benchmark and property-match
/// against; it is not a compatibility mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DesEngine {
    /// Calendar (bucket) event queues + incremental fair-share selection:
    /// the production hot path.
    #[default]
    Optimized,
    /// Binary-heap event queues + O(P) scan fair-share selection: the
    /// pre-overhaul structures, kept callable for ablation benchmarks and
    /// as the property-test oracle.
    Reference,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudConfig {
    /// RNG seed for execution noise and fault injection.
    pub seed: u64,
    /// Number of fair-share providers across the user population.
    pub num_providers: usize,
    /// Queue scheduling policy for every machine.
    pub discipline: Discipline,
    /// Coefficient of variation of execution-time noise.
    pub exec_noise_cov: f64,
    /// Probability that an execution errors out mid-run.
    pub error_rate: f64,
    /// Queue-length sampling interval, hours.
    pub sample_interval_hours: f64,
    /// Keep a full [`JobRecord`] for background jobs whose
    /// `id % divisor == 0` (study jobs are always kept). `1` keeps all.
    pub background_record_divisor: u64,
    /// Run the invariant [`audit`](crate::audit) over the run: every
    /// terminal record (including background records that sampling would
    /// drop) is observed and checked for causality, work conservation,
    /// fair-share conservation, aggregate consistency, and queue-sample
    /// sanity. The report lands in [`SimulationResult::audit`].
    pub audit: bool,
    /// Terminal-record destination: exact in-memory accumulation
    /// (default) or constant-memory streaming fold.
    pub record_sink: RecordSink,
    /// Event-engine data structures (optimized calendar/incremental path
    /// by default; the pre-overhaul reference structures stay callable).
    pub engine: DesEngine,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            seed: 0,
            num_providers: 40,
            discipline: Discipline::default(),
            exec_noise_cov: 0.08,
            error_rate: 0.045,
            sample_interval_hours: 6.0,
            background_record_divisor: 1,
            audit: false,
            record_sink: RecordSink::Exact,
            engine: DesEngine::Optimized,
        }
    }
}

/// Everything the simulation produced.
#[derive(Debug, Clone, Default)]
pub struct SimulationResult {
    /// Per-job records (all study jobs; background jobs subject to the
    /// configured sampling divisor), in terminal-event order.
    pub records: Vec<JobRecord>,
    /// Periodic queue-length samples across all machines.
    pub queue_samples: Vec<QueueSample>,
    /// Total jobs that reached a terminal state (whole population).
    pub total_jobs: u64,
    /// Jobs per outcome `[completed, errored, cancelled]` (whole
    /// population).
    pub outcome_counts: [u64; 3],
    /// Machine executions (circuits x shots) of completed/errored jobs,
    /// binned by the day the job finished (whole population).
    pub daily_executions: Vec<u64>,
    /// The invariant-audit report, when [`CloudConfig::audit`] was set.
    pub audit: Option<crate::AuditReport>,
    /// Constant-memory aggregates, when
    /// [`CloudConfig::record_sink`] was [`RecordSink::Streaming`].
    pub streaming: Option<StreamingAggregates>,
}

impl SimulationResult {
    /// Records belonging to the instrumented study subset.
    ///
    /// Borrows lazily — callers that only count or fold pay no
    /// allocation (the old `Vec<&JobRecord>` return resurfaced as an
    /// O(machines × records) rescan cost inside per-machine study loops).
    pub fn study_records(&self) -> impl Iterator<Item = &JobRecord> + '_ {
        self.records.iter().filter(|r| r.is_study)
    }

    /// Records for one machine, lazily.
    pub fn records_for_machine(&self, machine: usize) -> impl Iterator<Item = &JobRecord> + '_ {
        self.records.iter().filter(move |r| r.machine == machine)
    }

    /// Fraction of jobs with each outcome: `(completed, errored,
    /// cancelled)` over the whole population.
    #[must_use]
    pub fn outcome_fractions(&self) -> (f64, f64, f64) {
        let total = self.total_jobs.max(1) as f64;
        (
            self.outcome_counts[0] as f64 / total,
            self.outcome_counts[1] as f64 / total,
            self.outcome_counts[2] as f64 / total,
        )
    }

    /// Cumulative executions over time: `(day, cumulative executions)` per
    /// day with any activity (paper Fig 2a).
    #[must_use]
    pub fn cumulative_executions(&self) -> Vec<(usize, u64)> {
        let mut acc = 0u64;
        self.daily_executions
            .iter()
            .enumerate()
            .map(|(day, &n)| {
                acc += n;
                (day, acc)
            })
            .collect()
    }

    /// Mean pending jobs per machine over a time window (paper Fig 9's
    /// week-long average).
    #[must_use]
    pub fn mean_pending(&self, machine: usize, from_s: f64, to_s: f64) -> f64 {
        let (sum, count) = self
            .queue_samples
            .iter()
            .filter(|s| s.machine == machine && s.time_s >= from_s && s.time_s < to_s)
            .fold((0usize, 0usize), |(sum, count), s| {
                (sum + s.pending, count + 1)
            });
        if count == 0 {
            return 0.0;
        }
        sum as f64 / count as f64
    }

    /// [`mean_pending`](Self::mean_pending) for every machine in a single
    /// pass over the samples — per-machine callers looping over
    /// `mean_pending` rescan the whole sample vec once per machine.
    #[must_use]
    pub fn mean_pending_by_machine(&self, num_machines: usize, from_s: f64, to_s: f64) -> Vec<f64> {
        let mut sums = vec![0usize; num_machines];
        let mut counts = vec![0usize; num_machines];
        for s in &self.queue_samples {
            if s.machine < num_machines && s.time_s >= from_s && s.time_s < to_s {
                sums[s.machine] += s.pending;
                counts[s.machine] += 1;
            }
        }
        sums.iter()
            .zip(&counts)
            .map(|(&sum, &count)| {
                if count == 0 {
                    0.0
                } else {
                    sum as f64 / count as f64
                }
            })
            .collect()
    }

    /// Fraction of executed (non-cancelled) recorded jobs that crossed a
    /// calibration boundary between submission and the end of execution
    /// (Fig 12a).
    #[must_use]
    pub fn calibration_crossover_fraction(&self) -> f64 {
        let (crossed, executed) = self
            .records
            .iter()
            .filter(|r| r.outcome != JobOutcome::Cancelled)
            .fold((0usize, 0usize), |(crossed, executed), r| {
                (crossed + usize::from(r.crossed_calibration), executed + 1)
            });
        if executed == 0 {
            return 0.0;
        }
        crossed as f64 / executed as f64
    }
}

/// The cloud simulator.
///
/// # Examples
///
/// ```
/// use qcs_cloud::{CloudConfig, JobSpec, Simulation};
/// use qcs_machine::Fleet;
///
/// let fleet = Fleet::ibm_like();
/// let jobs = vec![JobSpec {
///     id: 0, provider: 0, machine: 1, circuits: 10, shots: 1024,
///     mean_depth: 20.0, mean_width: 3.0, submit_s: 0.0, is_study: true,
///     patience_s: f64::INFINITY,
/// }];
/// let result = Simulation::new(fleet, CloudConfig::default()).run(jobs);
/// assert_eq!(result.records.len(), 1);
/// assert!(result.records[0].exec_time_s() > 0.0);
/// ```
#[derive(Debug)]
pub struct Simulation {
    fleet: Fleet,
    config: CloudConfig,
    outages: OutagePlan,
}

impl Simulation {
    /// Create a simulator over a fleet with no machine outages.
    #[must_use]
    pub fn new(fleet: Fleet, config: CloudConfig) -> Self {
        let machines = fleet.len();
        Simulation {
            fleet,
            config,
            outages: OutagePlan::none(machines),
        }
    }

    /// Attach a maintenance/outage plan: machines stop dispatching new
    /// jobs during their windows (in-flight jobs finish), and the backlog
    /// drains afterwards — the mechanism behind day-long queue tails.
    ///
    /// # Panics
    ///
    /// Panics if the plan covers a different number of machines.
    #[must_use]
    pub fn with_outages(mut self, outages: OutagePlan) -> Self {
        assert_eq!(
            outages.num_machines(),
            self.fleet.len(),
            "outage plan machine count mismatch"
        );
        self.outages = outages;
        self
    }

    /// The fleet under simulation.
    #[must_use]
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Run the simulation over a set of jobs (any submission order).
    ///
    /// Deterministic for a fixed `(fleet, config, jobs)`. This is a thin
    /// wrapper over the incremental [`LiveCloud`](crate::LiveCloud) core:
    /// every job is submitted up front and the clock is advanced to the
    /// end in one step. Live-stepped runs are bit-identical (see
    /// `tests/properties.rs::live_matches_batch`).
    ///
    /// # Panics
    ///
    /// Panics if a job references a machine index outside the fleet or a
    /// provider outside `config.num_providers`.
    #[must_use]
    pub fn run(&self, jobs: Vec<JobSpec>) -> SimulationResult {
        let n_machines = self.fleet.len();
        for job in &jobs {
            assert!(
                job.machine < n_machines,
                "job {} targets unknown machine",
                job.id
            );
            assert!(
                (job.provider as usize) < self.config.num_providers,
                "job {} has unknown provider",
                job.id
            );
        }
        let mut live = crate::LiveCloud::new(self.fleet.clone(), self.config)
            .with_outages(self.outages.clone());
        for job in jobs {
            if let Err(e) = live.submit(job) {
                unreachable!("jobs validated above: {e}")
            }
        }
        live.run_to_completion();
        live.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, machine: usize, submit: f64) -> JobSpec {
        JobSpec {
            id,
            provider: (id % 4) as u32,
            machine,
            circuits: 5,
            shots: 1024,
            mean_depth: 20.0,
            mean_width: 3.0,
            submit_s: submit,
            is_study: id.is_multiple_of(2),
            patience_s: f64::INFINITY,
        }
    }

    fn sim() -> Simulation {
        Simulation::new(Fleet::ibm_like(), CloudConfig::default())
    }

    #[test]
    fn single_job_executes_immediately() {
        let result = sim().run(vec![job(0, 1, 100.0)]);
        assert_eq!(result.records.len(), 1);
        let r = &result.records[0];
        assert_eq!(r.queue_time_s(), 0.0);
        assert!(r.exec_time_s() > 0.0);
        assert_eq!(r.pending_at_submit, 0);
        assert_eq!(result.total_jobs, 1);
    }

    #[test]
    fn back_to_back_jobs_queue() {
        let jobs = vec![job(0, 1, 0.0), job(1, 1, 1.0)];
        let result = sim().run(jobs);
        assert_eq!(result.records.len(), 2);
        let second = result.records.iter().find(|r| r.id == 1).unwrap();
        assert!(second.queue_time_s() > 0.0, "second job should wait");
        assert_eq!(second.pending_at_submit, 1);
    }

    #[test]
    fn different_machines_run_in_parallel() {
        let jobs = vec![job(0, 1, 0.0), job(1, 2, 0.0)];
        let result = sim().run(jobs);
        assert!(result.records.iter().all(|r| r.queue_time_s() == 0.0));
    }

    #[test]
    fn impatient_job_cancels() {
        let mut blocked = job(1, 1, 1.0);
        blocked.patience_s = 2.0; // gives up after 2 seconds in queue
        let jobs = vec![job(0, 1, 0.0), blocked];
        // Disable fault injection so the first job runs full length.
        let config = CloudConfig {
            error_rate: 0.0,
            ..CloudConfig::default()
        };
        let result = Simulation::new(Fleet::ibm_like(), config).run(jobs);
        let cancelled = result.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(cancelled.outcome, JobOutcome::Cancelled);
        assert_eq!(cancelled.exec_time_s(), 0.0);
        assert!((cancelled.start_s - 3.0).abs() < 1e-9);
        assert_eq!(result.outcome_counts, [1, 0, 1]);
    }

    #[test]
    fn error_rate_produces_errored_jobs() {
        let config = CloudConfig {
            error_rate: 0.5,
            ..CloudConfig::default()
        };
        let jobs: Vec<JobSpec> = (0..200).map(|i| job(i, 1, i as f64 * 500.0)).collect();
        let result = Simulation::new(Fleet::ibm_like(), config).run(jobs);
        let (completed, errored, cancelled) = result.outcome_fractions();
        assert!(errored > 0.3 && errored < 0.7, "errored {errored}");
        assert!((completed + errored + cancelled - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_runs() {
        let jobs: Vec<JobSpec> = (0..50)
            .map(|i| job(i, (i % 3) as usize + 1, i as f64 * 10.0))
            .collect();
        let a = sim().run(jobs.clone());
        let b = sim().run(jobs);
        assert_eq!(a.records, b.records);
        assert_eq!(a.queue_samples, b.queue_samples);
        assert_eq!(a.daily_executions, b.daily_executions);
    }

    #[test]
    fn queue_samples_emitted() {
        let config = CloudConfig {
            sample_interval_hours: 0.001, // dense sampling for the test
            ..CloudConfig::default()
        };
        let jobs = vec![job(0, 1, 0.0), job(1, 1, 1.0), job(2, 1, 2.0)];
        let result = Simulation::new(Fleet::ibm_like(), config).run(jobs);
        assert!(!result.queue_samples.is_empty());
        let max_pending = result
            .queue_samples
            .iter()
            .filter(|s| s.machine == 1)
            .map(|s| s.pending)
            .max()
            .unwrap();
        assert!(max_pending >= 2, "max pending {max_pending}");
        assert!(result.mean_pending(1, 0.0, 1e9) > 0.0);
    }

    #[test]
    fn crossover_detected_for_overnight_waits() {
        // Submit just before the machine's calibration hour; a long queue
        // forces execution after calibration.
        let fleet = Fleet::ibm_like();
        let m = 1;
        let cal_hour = fleet.machines()[m].schedule().calibration_hour;
        let submit = (cal_hour - 0.01) * 3600.0;
        let mut big = job(0, m, submit - 50.0);
        big.circuits = 900;
        big.shots = 8192; // occupies the machine for a long time
        let small = job(1, m, submit);
        let result = Simulation::new(fleet, CloudConfig::default()).run(vec![big, small]);
        let r = result.records.iter().find(|r| r.id == 1).unwrap();
        assert!(r.queue_time_s() > 0.0);
        assert!(r.crossed_calibration, "queued across calibration");
        assert!(result.calibration_crossover_fraction() > 0.0);
    }

    #[test]
    fn study_filter() {
        let jobs = vec![job(0, 1, 0.0), job(1, 1, 1.0)];
        let result = sim().run(jobs);
        assert_eq!(result.study_records().count(), 1);
        assert_eq!(result.records_for_machine(1).count(), 2);
        assert_eq!(result.records_for_machine(5).count(), 0);
    }

    #[test]
    fn background_sampling_keeps_aggregates() {
        let config = CloudConfig {
            background_record_divisor: 10,
            ..CloudConfig::default()
        };
        // ids 1,3,5,... are background (is_study = id % 2 == 0).
        let jobs: Vec<JobSpec> = (0..100).map(|i| job(i, 1, i as f64 * 400.0)).collect();
        let result = Simulation::new(Fleet::ibm_like(), config).run(jobs);
        assert_eq!(result.total_jobs, 100);
        // All 50 study records plus background ids divisible by 10.
        let study = result.records.iter().filter(|r| r.is_study).count();
        let background = result.records.len() - study;
        assert_eq!(study, 50);
        assert!(background < 50, "background sampled, got {background}");
    }

    #[test]
    fn cumulative_executions_monotonic() {
        let jobs: Vec<JobSpec> = (0..20)
            .map(|i| job(i, 1, i as f64 * 40_000.0))
            .collect();
        let result = sim().run(jobs);
        let cum = result.cumulative_executions();
        assert!(!cum.is_empty());
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1));
        let total: u64 = result.daily_executions.iter().sum();
        assert_eq!(cum.last().unwrap().1, total);
    }

    #[test]
    fn outage_blocks_dispatch_until_window_end() {
        use crate::OutagePlan;
        let fleet = Fleet::ibm_like();
        let mut windows = vec![Vec::new(); fleet.len()];
        windows[1] = vec![(0.0, 1000.0)];
        let sim = Simulation::new(fleet, CloudConfig::default())
            .with_outages(OutagePlan::from_windows(windows));
        let result = sim.run(vec![job(0, 1, 10.0)]);
        let r = &result.records[0];
        assert!(
            (r.start_s - 1000.0).abs() < 1e-6,
            "job should start at outage end, started {}",
            r.start_s
        );
        assert!(r.queue_time_s() >= 989.0);
    }

    #[test]
    fn outage_on_other_machine_is_invisible() {
        use crate::OutagePlan;
        let fleet = Fleet::ibm_like();
        let mut windows = vec![Vec::new(); fleet.len()];
        windows[2] = vec![(0.0, 1000.0)];
        let sim = Simulation::new(fleet, CloudConfig::default())
            .with_outages(OutagePlan::from_windows(windows));
        let result = sim.run(vec![job(0, 1, 10.0)]);
        assert_eq!(result.records[0].queue_time_s(), 0.0);
    }

    #[test]
    fn all_jobs_error_under_full_fault_injection() {
        let config = CloudConfig {
            error_rate: 1.0,
            ..CloudConfig::default()
        };
        let jobs: Vec<JobSpec> = (0..30).map(|i| job(i, 1, i as f64 * 100.0)).collect();
        let result = Simulation::new(Fleet::ibm_like(), config).run(jobs);
        assert_eq!(result.outcome_counts[1], 30);
        // Errored jobs still execute partially.
        assert!(result.records.iter().all(|r| r.exec_time_s() > 0.0));
    }

    #[test]
    fn outage_spanning_whole_run_delays_everything() {
        use crate::OutagePlan;
        let fleet = Fleet::ibm_like();
        let mut windows = vec![Vec::new(); fleet.len()];
        windows[1] = vec![(0.0, 1e6)];
        let sim = Simulation::new(fleet, CloudConfig::default())
            .with_outages(OutagePlan::from_windows(windows));
        let jobs: Vec<JobSpec> = (0..5).map(|i| job(i, 1, i as f64)).collect();
        let result = sim.run(jobs);
        // All jobs eventually run, after the outage lifts.
        assert_eq!(result.records.len(), 5);
        assert!(result.records.iter().all(|r| r.start_s >= 1e6));
    }

    #[test]
    fn sjf_discipline_changes_order() {
        use crate::Discipline;
        // A long job and a short job arrive while the machine is busy;
        // SJF runs the short one first, FIFO preserves arrival order.
        let mut long_job = job(1, 1, 1.0);
        long_job.circuits = 900;
        long_job.shots = 8192;
        let short_job = job(2, 1, 2.0);
        let blocker = job(0, 1, 0.0);
        for (discipline, expect_first) in
            [(Discipline::Fifo, 1u64), (Discipline::ShortestJobFirst, 2)]
        {
            let config = CloudConfig {
                discipline,
                error_rate: 0.0,
                ..CloudConfig::default()
            };
            let result = Simulation::new(Fleet::ibm_like(), config).run(vec![
                blocker.clone(),
                long_job.clone(),
                short_job.clone(),
            ]);
            let mut by_start: Vec<&JobRecord> =
                result.records.iter().filter(|r| r.id != 0).collect();
            by_start.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
            assert_eq!(
                by_start[0].id, expect_first,
                "unexpected order under {discipline:?}"
            );
        }
    }

    #[test]
    fn executions_counted() {
        let result = sim().run(vec![job(0, 1, 0.0)]);
        assert_eq!(result.records[0].executions(), 5 * 1024);
    }

    #[test]
    fn crossover_counted_when_run_spans_calibration() {
        // Regression: a job dispatched *before* the calibration hour whose
        // execution crosses the boundary mid-run must count as a
        // crossover. The old code compared submission to dispatch time and
        // missed every boundary crossed during execution, biasing
        // Fig 12a's fraction low for long jobs.
        let fleet = Fleet::ibm_like();
        let m = 1;
        let cal_hour = fleet.machines()[m].schedule().calibration_hour;
        let config = CloudConfig {
            error_rate: 0.0,
            exec_noise_cov: 0.0, // deterministic durations
            audit: true,
            ..CloudConfig::default()
        };
        // Empty machine: dispatched at submission, 5 s before calibration.
        let mut big = job(0, m, cal_hour * 3600.0 - 5.0);
        big.circuits = 900;
        big.shots = 8192;
        let result = Simulation::new(fleet, config).run(vec![big]);
        let r = &result.records[0];
        assert_eq!(r.queue_time_s(), 0.0, "job should not have queued");
        assert!(r.exec_time_s() > 5.0, "job too short to span the boundary");
        assert!(r.crossed_calibration, "mid-run crossover not counted");
        result.audit.as_ref().unwrap().assert_clean();
    }

    #[test]
    fn cancel_at_exact_dispatch_instant_is_stale() {
        // The blocker's completion event was enqueued before the waiter's
        // cancel event, so at the shared instant the completion fires
        // first, the waiter is dispatched, and the cancel finds nothing
        // queued: the job runs.
        let fleet = Fleet::ibm_like();
        let config = CloudConfig {
            error_rate: 0.0,
            exec_noise_cov: 0.0,
            audit: true,
            ..CloudConfig::default()
        };
        let base = fleet.machines()[1]
            .cost_model()
            .job_time_uniform_s(5, 20, 1024);
        let blocker = job(0, 1, 0.0); // completes at exactly `base`
        let mut waiter = job(1, 1, 0.0); // same instant, after the blocker
        waiter.patience_s = base; // cancel fires at exactly `base`
        let result = Simulation::new(fleet, config).run(vec![blocker, waiter]);
        assert_eq!(result.outcome_counts, [2, 0, 0]);
        assert_eq!(result.total_jobs, 2);
        let w = result.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(w.outcome, JobOutcome::Completed);
        assert!((w.start_s - base).abs() < 1e-9, "started {}", w.start_s);
        result.audit.as_ref().unwrap().assert_clean();
    }

    #[test]
    fn cancel_at_outage_end_beats_resume() {
        // The reverse ordering: the cancel event was enqueued at arrival,
        // before the resume event, so at the outage-end instant the job is
        // cancelled first and the resume finds an empty queue.
        use crate::OutagePlan;
        let fleet = Fleet::ibm_like();
        let mut windows = vec![Vec::new(); fleet.len()];
        windows[1] = vec![(0.0, 100.0)];
        let config = CloudConfig {
            audit: true,
            ..CloudConfig::default()
        };
        let mut j = job(0, 1, 10.0);
        j.patience_s = 90.0; // fires at exactly the outage end
        let result = Simulation::new(fleet, config)
            .with_outages(OutagePlan::from_windows(windows))
            .run(vec![j]);
        assert_eq!(result.outcome_counts, [0, 0, 1]);
        let r = &result.records[0];
        assert_eq!(r.outcome, JobOutcome::Cancelled);
        assert_eq!(r.start_s, 100.0);
        assert_eq!(r.exec_time_s(), 0.0);
        result.audit.as_ref().unwrap().assert_clean();
    }

    #[test]
    fn cancel_during_outage_window() {
        use crate::OutagePlan;
        let fleet = Fleet::ibm_like();
        let mut windows = vec![Vec::new(); fleet.len()];
        windows[1] = vec![(0.0, 1000.0)];
        let config = CloudConfig {
            audit: true,
            ..CloudConfig::default()
        };
        let mut j = job(0, 1, 10.0);
        j.patience_s = 50.0; // gives up mid-outage, at t = 60
        let result = Simulation::new(fleet, config)
            .with_outages(OutagePlan::from_windows(windows))
            .run(vec![j]);
        assert_eq!(result.outcome_counts, [0, 0, 1]);
        assert_eq!(result.total_jobs, 1);
        assert_eq!(result.records[0].start_s, 60.0);
        result.audit.as_ref().unwrap().assert_clean();
    }

    #[test]
    fn stale_cancel_for_completed_job_is_ignored() {
        // A finite patience far beyond the completion time leaves a stale
        // cancel event in the heap; it must not double-record the job.
        let config = CloudConfig {
            error_rate: 0.0,
            audit: true,
            ..CloudConfig::default()
        };
        let mut j = job(0, 1, 0.0);
        j.patience_s = 1e6;
        let result = Simulation::new(Fleet::ibm_like(), config).run(vec![j]);
        assert_eq!(result.records.len(), 1);
        assert_eq!(result.total_jobs, 1);
        assert_eq!(result.outcome_counts, [1, 0, 0]);
        assert_eq!(result.records[0].outcome, JobOutcome::Completed);
        result.audit.as_ref().unwrap().assert_clean();
    }

    #[test]
    fn audit_clean_on_busy_trace() {
        // A contended multi-machine trace with cancellations, errors, and
        // record sampling keeps every invariant.
        let config = CloudConfig {
            audit: true,
            error_rate: 0.2,
            background_record_divisor: 5,
            sample_interval_hours: 0.01,
            ..CloudConfig::default()
        };
        let jobs: Vec<JobSpec> = (0..120)
            .map(|i| {
                let mut j = job(i, (i % 3) as usize + 1, i as f64 * 3.0);
                // Batches large enough that arrivals outpace service and
                // queues build, so the impatient jobs actually cancel.
                j.circuits = 40;
                if i % 4 == 0 {
                    j.patience_s = 20.0;
                }
                j
            })
            .collect();
        let result = Simulation::new(Fleet::ibm_like(), config).run(jobs);
        let report = result.audit.as_ref().expect("audit enabled");
        assert_eq!(report.records_audited, 120);
        report.assert_clean();
        assert!(result.outcome_counts[2] > 0, "no cancellations exercised");
    }

    #[test]
    fn audit_disabled_by_default() {
        let result = sim().run(vec![job(0, 1, 0.0)]);
        assert!(result.audit.is_none());
    }
}
