//! End-to-end invariants of the full study pipeline (workload → cloud DES
//! → analysis), on the smoke configuration.

use qcs::cloud::JobOutcome;
use qcs::stats::median;
use qcs::{Study, StudyConfig};

fn study() -> Study {
    // Every end-to-end test also runs under the invariant auditor: any
    // causality, conservation, or aggregate violation panics the run.
    let mut config = StudyConfig::smoke();
    config.cloud.audit = true;
    Study::run(&config)
}

#[test]
fn job_conservation() {
    let s = study();
    // Aggregates cover every job exactly once.
    let total: u64 = s.result().outcome_counts.iter().sum();
    assert_eq!(total, s.result().total_jobs);
    // Every study job reached a terminal state and was recorded.
    let study_records = s
        .result()
        .records
        .iter()
        .filter(|r| r.is_study)
        .count();
    assert_eq!(study_records, StudyConfig::smoke().workload.study_jobs);
}

#[test]
fn time_ordering_invariants() {
    let s = study();
    for r in &s.result().records {
        assert!(r.start_s >= r.submit_s, "job {} started before submit", r.id);
        assert!(r.end_s >= r.start_s, "job {} ended before start", r.id);
        if r.outcome == JobOutcome::Cancelled {
            assert_eq!(r.exec_time_s(), 0.0);
        } else {
            assert!(r.exec_time_s() > 0.0);
        }
    }
}

#[test]
fn wasted_executions_fraction_matches_paper_band() {
    // Paper Fig 2b: ~95% completed, ~5% wasted.
    let (completed, errored, cancelled) = study().outcome_fractions();
    assert!(
        (0.90..=0.98).contains(&completed),
        "completed {completed}"
    );
    assert!(errored + cancelled > 0.02, "wasted {}", errored + cancelled);
}

#[test]
fn batching_reduces_per_circuit_queue_time() {
    // Paper Fig 11: per-circuit queue time almost always decreases with
    // batch size.
    let s = study();
    let rows = s.queue_time_vs_batch();
    let populated: Vec<&(String, f64, f64, usize)> =
        rows.iter().filter(|r| r.3 >= 10).collect();
    assert!(populated.len() >= 3, "not enough populated buckets");
    // Compare the smallest against the largest populated bucket.
    let first = populated.first().unwrap();
    let last = populated.last().unwrap();
    assert!(
        last.2 < first.2,
        "per-circuit queue did not fall: {} -> {}",
        first.2,
        last.2
    );
}

#[test]
fn small_machines_are_more_utilized() {
    // Paper Fig 8.
    let s = study();
    let util = s.utilization_by_machine();
    let of = |name: &str| {
        util.iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.summary.median)
    };
    if let (Some(small), Some(large)) = (of("athens"), of("manhattan")) {
        assert!(small > large, "athens {small} manhattan {large}");
    }
}

#[test]
fn larger_machines_run_slower() {
    // Paper Fig 13: a common trend that larger machines have higher
    // run times.
    let s = study();
    let exec = s.exec_time_by_machine();
    let of = |name: &str| {
        exec.iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.summary.median)
            .unwrap_or(0.0)
    };
    assert!(of("manhattan") > of("athens"));
}

#[test]
fn execution_time_scales_with_batch() {
    // Paper Fig 14.
    let s = study();
    let points = s.runtime_vs_batch();
    let small: Vec<f64> = points
        .iter()
        .filter(|(b, _)| *b <= 20)
        .map(|(_, t)| *t)
        .collect();
    let large: Vec<f64> = points
        .iter()
        .filter(|(b, _)| *b >= 400)
        .map(|(_, t)| *t)
        .collect();
    assert!(!small.is_empty() && !large.is_empty());
    assert!(median(&large) > 5.0 * median(&small));
}

#[test]
fn queue_times_dominate_execution_times() {
    // Paper §III-C: queuing dominates execution on average (ratios well
    // above 1 in the upper half of the distribution).
    let s = study();
    let ratios = s.queue_exec_ratios_sorted();
    let high = qcs::stats::quantile(&ratios, 0.75).unwrap();
    assert!(high > 2.0, "p75 ratio {high}");
}

#[test]
fn prediction_correlation_is_high() {
    // Paper Fig 15: correlation >= 0.95 on all but two machines. On the
    // smoke study we demand a high pooled correlation and mostly-high
    // per-machine values.
    let s = study();
    let p = s.prediction_study(11);
    assert!(p.overall_correlation > 0.9, "overall {}", p.overall_correlation);
    let high = p
        .per_machine
        .iter()
        .filter(|m| m.correlation > 0.9)
        .count();
    assert!(
        high * 10 >= p.per_machine.len() * 7,
        "only {high}/{} machines above 0.9",
        p.per_machine.len()
    );
}

#[test]
fn calibration_crossovers_exist() {
    let s = study();
    let f = s.calibration_crossover_fraction();
    assert!(f > 0.0, "no crossovers observed");
    assert!(f < 0.9, "implausibly many crossovers: {f}");
}

#[test]
fn queue_samples_cover_all_machines() {
    let s = study();
    let machines: std::collections::HashSet<usize> = s
        .result()
        .queue_samples
        .iter()
        .map(|q| q.machine)
        .collect();
    assert_eq!(machines.len(), 25);
}

#[test]
fn audit_invariants_hold_on_smoke_study() {
    let s = study();
    let report = s.audit_report().expect("audit enabled");
    assert!(report.records_audited as u64 >= s.result().total_jobs);
    report.assert_clean();
}

#[test]
fn study_is_deterministic() {
    let a = Study::run(&StudyConfig::smoke());
    let b = Study::run(&StudyConfig::smoke());
    assert_eq!(a.result().total_jobs, b.result().total_jobs);
    assert_eq!(a.result().outcome_counts, b.result().outcome_counts);
    assert_eq!(a.queue_times_sorted_min(), b.queue_times_sorted_min());
}
