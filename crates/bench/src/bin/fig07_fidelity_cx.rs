//! Fig 7: probability of success of a 4q QFT benchmark vs compile-time CX
//! metrics across machines (paper: POS 62%..19%, anti-correlated with CX
//! depth/count/error products; not correlated with machine size).

use qcs::experiments::fidelity_vs_cx;
use qcs::machine::Fleet;
use qcs::stats::pearson;
use qcs_bench::write_csv;

fn main() {
    let fleet = Fleet::ibm_like();
    // The paper's machine set.
    let machines = ["casablanca", "toronto", "guadalupe", "rome", "manhattan"];
    let rows = fidelity_vs_cx(&fleet, &machines, 4, 36.0, 8192, 7).expect("experiment runs");
    println!("Fig 7 — 4q QFT fidelity vs CX metrics");
    println!(
        "  {:<12} {:>3} {:>8} {:>9} {:>9} {:>12} {:>12}",
        "machine", "q", "POS", "CX-Depth", "CX-Total", "CXD*err", "CXT*err"
    );
    for r in &rows {
        println!(
            "  {:<12} {:>3} {:>7.1}% {:>9} {:>9} {:>12.4} {:>12.4}",
            r.machine, r.qubits, 100.0 * r.pos, r.cx_depth, r.cx_total, r.cx_depth_err, r.cx_total_err
        );
    }
    let pos: Vec<f64> = rows.iter().map(|r| r.pos).collect();
    let cxd_err: Vec<f64> = rows.iter().map(|r| r.cx_depth_err).collect();
    let cxt_err: Vec<f64> = rows.iter().map(|r| r.cx_total_err).collect();
    let sizes: Vec<f64> = rows.iter().map(|r| r.qubits as f64).collect();
    println!("  correlation(POS, CX-D*err) = {:.2} (paper: strongly negative)", pearson(&pos, &cxd_err));
    println!("  correlation(POS, CX-T*err) = {:.2} (paper: strongly negative)", pearson(&pos, &cxt_err));
    println!("  correlation(POS, qubits)   = {:.2} (paper: not size-correlated)", pearson(&pos, &sizes));
    write_csv(
        "fig07_fidelity_cx.csv",
        "machine,qubits,pos,cx_depth,cx_total,cx_depth_err,cx_total_err",
        rows.iter().map(|r| {
            format!(
                "{},{},{},{},{},{},{}",
                r.machine, r.qubits, r.pos, r.cx_depth, r.cx_total, r.cx_depth_err, r.cx_total_err
            )
        }),
    );
}
