//! The incremental (resumable) cloud-simulation core.
//!
//! [`LiveCloud`] is the event engine behind
//! [`Simulation::run`](crate::Simulation::run), exposed as a stepping API:
//! jobs can be [`submit`](LiveCloud::submit)ted at arbitrary simulation
//! times, the clock advances via [`step_until`](LiveCloud::step_until),
//! queued jobs can be [`cancel`](LiveCloud::cancel)led, and per-machine
//! queue depth, fair-share state, and terminal records are observable
//! while the simulation is in flight. This is what lets a network-fronted
//! service (`qcs-gateway`) run the simulator *online* — job by job — in
//! contrast to the batch replay of a complete trace.
//!
//! **Equivalence guarantee:** a trace submitted in submission-time order
//! and advanced through any sequence of `step_until` calls produces
//! records, queue samples, and aggregates *bit-for-bit identical* to
//! `Simulation::run` on the same trace. The batch API is in fact a thin
//! wrapper over this type, and `tests/properties.rs::live_matches_batch`
//! locks the equivalence across disciplines, outage plans, and random
//! step schedules.
//!
//! # Hot-path layout
//!
//! The engine stores each in-flight job once, in a slab
//! ([`JobSlab`]), and moves only 24-byte `u32`-handle entries through the
//! queues and agendas — no per-job `HashMap` traffic, no 80-byte specs
//! sifting through heaps. Under the default
//! [`DesEngine::Optimized`](crate::DesEngine) the event and arrival
//! agendas are [`Calendar`] bucket queues and fair-share selection is the
//! incremental winner tree; [`DesEngine::Reference`](crate::DesEngine)
//! keeps binary heaps and the O(P) scan. Both engines compare identical
//! `u128` `(time, seq)` keys and identical fair-share keys, so their
//! outputs are bit-for-bit equal (property-tested); the reference engine
//! is the in-process oracle and ablation baseline, not a compatibility
//! mode.
//!
//! # Examples
//!
//! ```
//! use qcs_cloud::{CloudConfig, JobSpec, LiveCloud};
//! use qcs_machine::Fleet;
//!
//! let mut cloud = LiveCloud::new(Fleet::ibm_like(), CloudConfig::default());
//! cloud.submit(JobSpec {
//!     id: 0, provider: 0, machine: 1, circuits: 10, shots: 1024,
//!     mean_depth: 20.0, mean_width: 3.0, submit_s: 5.0, is_study: true,
//!     patience_s: f64::INFINITY,
//! }).unwrap();
//! cloud.step_until(5.0);
//! assert_eq!(cloud.queue_depth(1), 1); // dispatched, executing
//! cloud.run_to_completion();
//! let result = cloud.into_result();
//! assert_eq!(result.records.len(), 1);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use qcs_calibration::distributions::lognormal_with_cov;
use qcs_exec::hash::FxHashMap;
use qcs_machine::Fleet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::calendar::{key_of, key_time, Calendar};
use crate::{
    CloudConfig, DesEngine, JobOutcome, JobQueue, JobRecord, JobSpec, OutagePlan, QueueItem,
    QueueSample, RecordSink, SimulationResult, StreamingAggregates,
};

/// One in-flight job in the slab: the spec, its queue depth at
/// submission, and a generation counter detecting stale handles.
#[derive(Debug, Clone)]
struct JobState {
    spec: JobSpec,
    /// Jobs pending on the target machine when this one was admitted.
    pending_at_submit: u32,
    /// Bumped every time the slot is freed; events carrying an older
    /// generation are stale and ignored.
    generation: u32,
}

/// Slab storage for in-flight jobs: `u32` handles into a reusable entry
/// vector (a free list recycles terminal slots), replacing the old
/// per-job `HashMap` traffic on the admit/dispatch/terminal path.
#[derive(Debug, Default)]
struct JobSlab {
    entries: Vec<JobState>,
    free: Vec<u32>,
}

impl JobSlab {
    fn alloc(&mut self, spec: JobSpec) -> u32 {
        if let Some(handle) = self.free.pop() {
            let entry = &mut self.entries[handle as usize];
            entry.spec = spec;
            entry.pending_at_submit = 0;
            handle
        } else {
            self.entries.push(JobState {
                spec,
                pending_at_submit: 0,
                generation: 0,
            });
            (self.entries.len() - 1) as u32
        }
    }

    #[inline]
    fn spec(&self, handle: u32) -> &JobSpec {
        &self.entries[handle as usize].spec
    }

    #[inline]
    fn generation(&self, handle: u32) -> u32 {
        self.entries[handle as usize].generation
    }

    fn set_pending(&mut self, handle: u32, pending: u32) {
        self.entries[handle as usize].pending_at_submit = pending;
    }

    /// Release a slot at its terminal event: returns the spec and the
    /// memoized pending-at-submit, bumps the generation so any
    /// still-scheduled event for this handle turns stale, and recycles
    /// the slot.
    fn release(&mut self, handle: u32) -> (JobSpec, u32) {
        let entry = &mut self.entries[handle as usize];
        entry.generation = entry.generation.wrapping_add(1);
        let pending = entry.pending_at_submit;
        let spec = entry.spec.clone();
        self.free.push(handle);
        (spec, pending)
    }
}

/// The compact queue entry: everything a discipline's ordering decisions
/// read, plus the slab handle to the full spec. 24 bytes versus the
/// 80-byte `JobSpec` the queues used to shuffle.
#[derive(Debug, Clone, Copy, PartialEq)]
struct QItem {
    handle: u32,
    provider: u32,
    id: u64,
    submit_s: f64,
}

impl QueueItem for QItem {
    fn id(&self) -> u64 {
        self.id
    }

    fn provider(&self) -> u32 {
        self.provider
    }

    fn submit_s(&self) -> f64 {
        self.submit_s
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Completion { machine: u32 },
    CancelCheck { handle: u32, generation: u32 },
    Resume { machine: u32 },
}

/// A keyed entry for the reference binary-heap agendas: ordered by the
/// same packed `(time, seq)` `u128` the calendar uses, reversed for the
/// max-heap, so both engines pop in exactly the same order.
#[derive(Debug, Clone, PartialEq, Eq)]
struct HeapEntry<T> {
    key: u128,
    item: T,
}

impl<T: Eq> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other.key.cmp(&self.key)
    }
}

impl<T: Eq> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered agenda, engine-selectable: calendar buckets (optimized)
/// or a binary heap (reference). Identical pop order by construction —
/// both order by [`key_of`]`(time, seq)`.
#[derive(Debug)]
enum Agenda<T> {
    Heap(BinaryHeap<HeapEntry<T>>),
    Calendar(Calendar<T>),
}

impl<T: Eq> Agenda<T> {
    fn new(engine: DesEngine) -> Self {
        match engine {
            DesEngine::Optimized => Agenda::Calendar(Calendar::new()),
            DesEngine::Reference => Agenda::Heap(BinaryHeap::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            Agenda::Heap(h) => h.len(),
            Agenda::Calendar(c) => c.len(),
        }
    }

    fn push(&mut self, time_s: f64, seq: u64, item: T) {
        match self {
            Agenda::Heap(h) => h.push(HeapEntry {
                key: key_of(time_s, seq),
                item,
            }),
            Agenda::Calendar(c) => c.push(time_s, seq, item),
        }
    }

    fn peek_time(&mut self) -> Option<f64> {
        match self {
            Agenda::Heap(h) => h.peek().map(|e| key_time(e.key)),
            Agenda::Calendar(c) => c.peek_time(),
        }
    }

    fn pop(&mut self) -> Option<(f64, T)> {
        match self {
            Agenda::Heap(h) => h.pop().map(|e| (key_time(e.key), e.item)),
            Agenda::Calendar(c) => c.pop(),
        }
    }

    /// Remove the first entry matching `pred` (arbitrary scan order) —
    /// the cancel-before-arrival path. O(n).
    fn remove_first<F: FnMut(&T) -> bool>(&mut self, mut pred: F) -> Option<T> {
        match self {
            Agenda::Heap(h) => {
                let mut entries = std::mem::take(h).into_vec();
                let found = entries
                    .iter()
                    .position(|e| pred(&e.item))
                    .map(|pos| entries.swap_remove(pos).item);
                *h = BinaryHeap::from(entries);
                found
            }
            Agenda::Calendar(c) => c.remove_first(pred),
        }
    }
}

struct Executing {
    handle: u32,
    start_s: f64,
    end_s: f64,
    outcome: JobOutcome,
    crossed: bool,
}

/// Where a job currently is in its lifecycle, as tracked by
/// [`LiveCloud::status`] (requires
/// [`with_status_tracking`](LiveCloud::with_status_tracking)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Submitted, waiting in a machine queue (or for the clock to reach
    /// its submission time).
    Queued,
    /// Dispatched and executing on its machine.
    Running,
    /// Ran to completion.
    Completed,
    /// Failed during execution.
    Errored,
    /// Withdrawn before dispatch.
    Cancelled,
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Errored => "errored",
            JobStatus::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// Why a [`LiveCloud::submit`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The job targets a machine index outside the fleet.
    UnknownMachine {
        /// Offending job id.
        job: u64,
        /// The out-of-range machine index.
        machine: usize,
    },
    /// The job's provider is outside `config.num_providers`.
    UnknownProvider {
        /// Offending job id.
        job: u64,
        /// The out-of-range provider id.
        provider: u32,
    },
    /// The job's submission time precedes the current simulation clock —
    /// the past cannot be rewritten.
    SubmitInPast {
        /// Offending job id.
        job: u64,
        /// The job's submission time (s).
        submit_s: f64,
        /// The current clock (s).
        now_s: f64,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownMachine { job, machine } => {
                write!(f, "job {job} targets unknown machine {machine}")
            }
            SubmitError::UnknownProvider { job, provider } => {
                write!(f, "job {job} has unknown provider {provider}")
            }
            SubmitError::SubmitInPast {
                job,
                submit_s,
                now_s,
            } => write!(
                f,
                "job {job} submitted at {submit_s} s but the clock is already at {now_s} s"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The resumable cloud simulator: accepts submissions and cancellations
/// at arbitrary simulation times and advances on demand.
///
/// See the [module docs](self) for the equivalence guarantee against the
/// batch API and the engine-selectable hot-path layout.
pub struct LiveCloud {
    fleet: Fleet,
    config: CloudConfig,
    outages: OutagePlan,
    rng: StdRng,
    /// In-flight job storage; queues and agendas hold `u32` handles.
    slab: JobSlab,
    queues: Vec<JobQueue<QItem>>,
    executing: Vec<Option<Executing>>,
    resume_scheduled: Vec<bool>,
    events: Agenda<EventKind>,
    seq: u64,
    /// Submitted jobs waiting for the clock to reach their submission
    /// time, as slab handles keyed by `(submit_s, submission order)` —
    /// the stable tie-break the batch API historically applied.
    arrivals: Agenda<u32>,
    arrival_seq: u64,
    result: SimulationResult,
    auditor: Option<crate::Auditor>,
    streaming: Option<StreamingAggregates>,
    sample_interval_s: f64,
    /// Index of the next sample instant: the k-th sample lands at exactly
    /// `k as f64 * sample_interval_s`. An integer tick (not a running
    /// float sum) so a 2-year campaign cannot drift the sample grid.
    next_sample_tick: u64,
    now_s: f64,
    drain_cursor: usize,
    statuses: Option<FxHashMap<u64, JobStatus>>,
    /// Observer invoked for every terminal record, before any sink can
    /// sample or fold it away — the hook online consumers (the gateway's
    /// queue-time predictor) learn from, independent of `RecordSink`.
    tap: Option<RecordTapFn>,
}

/// A terminal-record observer installed with
/// [`LiveCloud::with_record_tap`] / [`LiveCloud::set_record_tap`].
pub type RecordTapFn = Box<dyn FnMut(&JobRecord) + Send>;

impl fmt::Debug for LiveCloud {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveCloud")
            .field("now_s", &self.now_s)
            .field("machines", &self.fleet.len())
            .field("pending_arrivals", &self.arrivals.len())
            .field("pending_events", &self.events.len())
            .field("total_jobs", &self.result.total_jobs)
            .finish_non_exhaustive()
    }
}

impl LiveCloud {
    /// Create a live simulator over a fleet with no machine outages and no
    /// per-job status tracking.
    #[must_use]
    pub fn new(fleet: Fleet, config: CloudConfig) -> Self {
        let n_machines = fleet.len();
        let sample_interval_s = config.sample_interval_hours * 3600.0;
        let queues = (0..n_machines)
            .map(|_| match config.engine {
                DesEngine::Optimized => JobQueue::new(config.discipline, config.num_providers),
                DesEngine::Reference => {
                    JobQueue::new_with_scan_selection(config.discipline, config.num_providers)
                }
            })
            .collect();
        LiveCloud {
            rng: StdRng::seed_from_u64(config.seed),
            slab: JobSlab::default(),
            queues,
            executing: (0..n_machines).map(|_| None).collect(),
            resume_scheduled: vec![false; n_machines],
            events: Agenda::new(config.engine),
            seq: 0,
            arrivals: Agenda::new(config.engine),
            arrival_seq: 0,
            result: SimulationResult::default(),
            auditor: config.audit.then(crate::Auditor::new),
            streaming: match config.record_sink {
                RecordSink::Exact => None,
                RecordSink::Streaming {
                    reservoir_capacity,
                    reservoir_seed,
                } => Some(StreamingAggregates::new(
                    reservoir_capacity as usize,
                    reservoir_seed,
                    config.num_providers,
                )),
            },
            sample_interval_s,
            next_sample_tick: 1,
            now_s: 0.0,
            drain_cursor: 0,
            statuses: None,
            tap: None,
            outages: OutagePlan::none(n_machines),
            fleet,
            config,
        }
    }

    /// Install a terminal-record tap: `tap` runs for **every** terminal
    /// record (completed, errored, cancelled) the moment it is produced,
    /// before background sampling or the streaming sink can drop it. This
    /// is how online consumers — e.g. the gateway's queue-time predictor
    /// — learn from the record stream without materializing it.
    #[must_use]
    pub fn with_record_tap(mut self, tap: RecordTapFn) -> Self {
        self.tap = Some(tap);
        self
    }

    /// Install or replace the terminal-record tap after construction.
    /// See [`with_record_tap`](LiveCloud::with_record_tap).
    pub fn set_record_tap(&mut self, tap: RecordTapFn) {
        self.tap = Some(tap);
    }

    /// Attach a maintenance/outage plan (see
    /// [`Simulation::with_outages`](crate::Simulation::with_outages)).
    ///
    /// # Panics
    ///
    /// Panics if the plan covers a different number of machines.
    #[must_use]
    pub fn with_outages(mut self, outages: OutagePlan) -> Self {
        assert_eq!(
            outages.num_machines(),
            self.fleet.len(),
            "outage plan machine count mismatch"
        );
        self.outages = outages;
        self
    }

    /// Enable per-job lifecycle tracking so [`status`](LiveCloud::status)
    /// answers for every job ever submitted. Off by default: the batch
    /// path runs millions of background jobs and does not need it.
    #[must_use]
    pub fn with_status_tracking(mut self) -> Self {
        self.statuses = Some(FxHashMap::default());
        self
    }

    /// The fleet under simulation.
    #[must_use]
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The current simulation clock, seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Jobs pending on a machine right now: queued plus executing.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    #[must_use]
    pub fn queue_depth(&self, machine: usize) -> usize {
        self.queues[machine].len() + usize::from(self.executing[machine].is_some())
    }

    /// Per-provider lifetime charged seconds (undecayed) on a machine —
    /// the live view of the fair-share state. `None` for disciplines
    /// without usage accounting.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    #[must_use]
    pub fn fair_share_charged(&self, machine: usize) -> Option<&[f64]> {
        self.queues[machine].charged_raw()
    }

    /// Per-provider lifetime charged seconds (undecayed) summed over
    /// every machine. Zeros for disciplines without usage accounting.
    /// This is the shard-local side of the cross-shard conservation law:
    /// it must equal the seconds executed on this cloud's machines.
    #[must_use]
    pub fn charged_seconds_by_provider(&self) -> Vec<f64> {
        let mut totals = vec![0.0; self.config.num_providers];
        for queue in &self.queues {
            if let Some(charged) = queue.charged_raw() {
                for (total, c) in totals.iter_mut().zip(charged) {
                    *total += c;
                }
            }
        }
        totals
    }

    /// Per-provider seconds executed on this cloud's machines so far:
    /// the streaming ledger under a streaming sink, otherwise a fold over
    /// the stored records. The exact-mode fold undercounts when
    /// `background_record_divisor` samples records away; the streaming
    /// ledger always covers the whole population.
    #[must_use]
    pub fn executed_seconds_by_provider(&self) -> Vec<f64> {
        if let Some(aggregates) = &self.streaming {
            return aggregates.executed_seconds_by_provider().to_vec();
        }
        let mut totals = vec![0.0; self.config.num_providers];
        for record in &self.result.records {
            if record.outcome != JobOutcome::Cancelled {
                totals[record.provider as usize] += record.exec_time_s();
            }
        }
        totals
    }

    /// Jobs that reached a terminal state so far (whole population).
    #[must_use]
    pub fn total_jobs(&self) -> u64 {
        self.result.total_jobs
    }

    /// Jobs per outcome `[completed, errored, cancelled]` so far (whole
    /// population). Unlike [`drain_new_records`](Self::drain_new_records)
    /// this counts every terminal job regardless of record sampling or
    /// sink mode, so it is the drain-independent way to observe progress.
    #[must_use]
    pub fn outcome_counts(&self) -> [u64; 3] {
        self.result.outcome_counts
    }

    /// Submitted jobs whose submission time the clock has not reached yet
    /// — the arrival-agenda backlog. Chunked drivers use this to keep the
    /// in-flight window (and thus memory) bounded on huge traces.
    #[must_use]
    pub fn pending_arrivals(&self) -> usize {
        self.arrivals.len()
    }

    /// Terminal records materialized so far. Grows with the trace under
    /// [`RecordSink::Exact`](crate::RecordSink::Exact); stays `0` under a
    /// streaming sink — the number the bounded-memory smoke gate asserts
    /// on.
    #[must_use]
    pub fn records_len(&self) -> usize {
        self.result.records.len()
    }

    /// Live view of the streaming aggregates; `None` under the exact
    /// record sink.
    #[must_use]
    pub fn streaming_aggregates(&self) -> Option<&StreamingAggregates> {
        self.streaming.as_ref()
    }

    /// Install cross-shard fair-share usage: `seconds` of machine time
    /// provider `provider` consumed *elsewhere* (on another gateway
    /// shard's machines) since the last reconciliation. The seconds enter
    /// every machine queue's **decayed** usage accumulator — each queue
    /// orders against the provider's global footprint — but never the
    /// undecayed `charged_raw` ledger, which stays equal to the seconds
    /// executed *on this shard* so the auditor's per-machine conservation
    /// law keeps holding exactly.
    ///
    /// No-op for disciplines without usage accounting.
    ///
    /// # Panics
    ///
    /// Panics if `provider` is outside the configured provider count.
    pub fn inject_external_usage(&mut self, provider: u32, seconds: f64) {
        assert!(
            (provider as usize) < self.config.num_providers,
            "unknown provider {provider}"
        );
        if seconds <= 0.0 {
            return;
        }
        let now_s = self.now_s;
        for queue in &mut self.queues {
            queue.inject_usage(provider, seconds, now_s);
        }
    }

    /// Where `job_id` currently is. `None` when status tracking is off or
    /// the id was never submitted.
    #[must_use]
    pub fn status(&self, job_id: u64) -> Option<JobStatus> {
        self.statuses.as_ref()?.get(&job_id).copied()
    }

    /// Terminal records produced since the last drain (in terminal-event
    /// order). Background jobs dropped by
    /// [`CloudConfig::background_record_divisor`] sampling never appear.
    pub fn drain_new_records(&mut self) -> Vec<JobRecord> {
        let new = self.result.records[self.drain_cursor..].to_vec();
        self.drain_cursor = self.result.records.len();
        new
    }

    /// Submit a job. Its `submit_s` must not precede the current clock;
    /// the job enters its machine's queue when the clock reaches it.
    /// Jobs sharing a submission time arrive in submission order.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when the job targets an unknown machine or
    /// provider, or its submission time is already in the past.
    pub fn submit(&mut self, job: JobSpec) -> Result<(), SubmitError> {
        if job.machine >= self.fleet.len() {
            return Err(SubmitError::UnknownMachine {
                job: job.id,
                machine: job.machine,
            });
        }
        if (job.provider as usize) >= self.config.num_providers {
            return Err(SubmitError::UnknownProvider {
                job: job.id,
                provider: job.provider,
            });
        }
        if job.submit_s < self.now_s {
            return Err(SubmitError::SubmitInPast {
                job: job.id,
                submit_s: job.submit_s,
                now_s: self.now_s,
            });
        }
        if let Some(statuses) = self.statuses.as_mut() {
            statuses.insert(job.id, JobStatus::Queued);
        }
        let submit_s = job.submit_s;
        let handle = self.slab.alloc(job);
        self.arrivals.push(submit_s, self.arrival_seq, handle);
        self.arrival_seq += 1;
        Ok(())
    }

    /// Cancel a job that has not started executing. Returns `true` when
    /// the job was withdrawn: a queued job leaves a cancelled
    /// [`JobRecord`] at the current clock; a job whose submission time has
    /// not been reached yet is silently unscheduled (it never entered the
    /// service, so it produces no record). Running, finished, or unknown
    /// jobs are not cancellable and return `false`.
    pub fn cancel(&mut self, job_id: u64) -> bool {
        // Not yet arrived? Unschedule without a record.
        let slab = &self.slab;
        if let Some(handle) = self
            .arrivals
            .remove_first(|&handle| slab.spec(handle).id == job_id)
        {
            self.slab.release(handle);
            if let Some(statuses) = self.statuses.as_mut() {
                statuses.insert(job_id, JobStatus::Cancelled);
            }
            return true;
        }
        // Sample instants that already passed must be recorded against the
        // pre-cancellation queue state.
        self.emit_samples_until(self.now_s);
        for machine in 0..self.queues.len() {
            if let Some(item) = self.queues[machine].remove(job_id) {
                let (spec, pending) = self.slab.release(item.handle);
                let now_s = self.now_s;
                self.finish(cancelled_record(&spec, machine, now_s, pending));
                return true;
            }
        }
        false
    }

    /// Advance the simulation clock to `t_s`, processing every arrival
    /// and event up to (and including) that instant in time order.
    /// Periodic queue samples are emitted exactly as the batch run does.
    /// Passing a non-finite `t_s` drains everything
    /// ([`run_to_completion`](LiveCloud::run_to_completion) is the
    /// readable spelling). The clock never moves backwards; `t_s` in the
    /// past is a no-op.
    pub fn step_until(&mut self, t_s: f64) {
        loop {
            let next_arrival_s = self.arrivals.peek_time();
            let next_event_s = self.events.peek_time();
            let now_s = match (next_arrival_s, next_event_s) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(e)) => e,
                (Some(a), Some(e)) => a.min(e),
            };
            if now_s > t_s {
                break;
            }
            self.emit_samples_until(now_s);
            self.now_s = now_s;

            // Arrivals win ties so a job can start on an exactly-coincident
            // completion.
            if next_arrival_s.is_some_and(|a| next_event_s.is_none_or(|e| a <= e)) {
                if let Some((_, handle)) = self.arrivals.pop() {
                    self.admit(handle, now_s);
                }
                continue;
            }

            if let Some((time_s, kind)) = self.events.pop() {
                self.process_event(time_s, kind);
            }
        }
        if t_s.is_finite() {
            self.now_s = self.now_s.max(t_s);
        }
    }

    /// Drain every pending arrival and event; the clock ends at the last
    /// terminal instant.
    pub fn run_to_completion(&mut self) {
        self.step_until(f64::INFINITY);
    }

    /// Finish the run: finalize the audit (when enabled) and return the
    /// accumulated [`SimulationResult`]. Pending arrivals or in-flight
    /// jobs are *not* drained automatically — call
    /// [`run_to_completion`](LiveCloud::run_to_completion) first unless a
    /// truncated result is intended.
    #[must_use]
    pub fn into_result(self) -> SimulationResult {
        let mut result = self.result;
        if let Some(auditor) = self.auditor {
            let charged_raw: Vec<Option<Vec<f64>>> = self
                .queues
                .iter()
                .map(|q| q.charged_raw().map(<[f64]>::to_vec))
                .collect();
            result.audit = Some(auditor.finalize(&result, &self.outages, &charged_raw));
        }
        result.streaming = self.streaming;
        result
    }

    /// Emit queue samples for all machines up to `now_s`. Also called
    /// before any externally-triggered state change (cancellation) so a
    /// sample instant that already passed is recorded against the state
    /// that actually held at that instant.
    fn emit_samples_until(&mut self, now_s: f64) {
        if self.sample_interval_s <= 0.0 {
            return;
        }
        // The k-th sample instant is derived as k * interval rather than
        // by repeated float addition: over a 2-year, 6-hour campaign the
        // accumulated `+=` error drifts the grid and can skip or
        // duplicate a tick (non-representable intervals drift fastest).
        loop {
            let sample_s = self.next_sample_tick as f64 * self.sample_interval_s;
            if sample_s > now_s {
                break;
            }
            for (m, queue) in self.queues.iter().enumerate() {
                let pending = queue.len() + usize::from(self.executing[m].is_some());
                self.result.queue_samples.push(QueueSample {
                    time_s: sample_s,
                    machine: m,
                    pending,
                });
            }
            self.next_sample_tick += 1;
        }
    }

    /// A job's submission time has been reached: enqueue it on its
    /// machine, schedule its patience, and dispatch if the machine is
    /// idle.
    fn admit(&mut self, handle: u32, now_s: f64) {
        let spec = self.slab.spec(handle);
        let machine = spec.machine;
        let item = QItem {
            handle,
            provider: spec.provider,
            id: spec.id,
            submit_s: spec.submit_s,
        };
        let patience_s = spec.patience_s;
        let (circuits, depth, shots) = (
            spec.circuits,
            spec.mean_depth.round().max(1.0) as usize,
            spec.shots,
        );
        let pending = self.queue_depth(machine);
        self.slab.set_pending(handle, pending as u32);
        if patience_s.is_finite() {
            self.events.push(
                item.submit_s + patience_s,
                self.seq,
                EventKind::CancelCheck {
                    handle,
                    generation: self.slab.generation(handle),
                },
            );
            self.seq += 1;
        }
        let estimate_s = self.fleet.machines()[machine]
            .cost_model()
            .job_time_uniform_s(circuits, depth, shots);
        self.queues[machine].push(item, estimate_s);
        if self.executing[machine].is_none() {
            self.start_next(machine, now_s);
        }
    }

    fn process_event(&mut self, time_s: f64, kind: EventKind) {
        match kind {
            EventKind::Completion { machine } => {
                let machine = machine as usize;
                let Some(done) = self.executing[machine].take() else {
                    unreachable!("completion event without an executing job")
                };
                let (spec, pending) = self.slab.release(done.handle);
                // Charge at the completion time so usage decays to
                // "now" before the executed seconds land.
                self.queues[machine].charge(spec.provider, done.end_s - done.start_s, done.end_s);
                self.finish(JobRecord {
                    id: spec.id,
                    provider: spec.provider,
                    machine,
                    circuits: spec.circuits,
                    shots: spec.shots,
                    mean_width: spec.mean_width,
                    mean_depth: spec.mean_depth,
                    is_study: spec.is_study,
                    submit_s: spec.submit_s,
                    start_s: done.start_s,
                    end_s: done.end_s,
                    outcome: done.outcome,
                    pending_at_submit: pending as usize,
                    crossed_calibration: done.crossed,
                });
                self.start_next(machine, time_s);
            }
            EventKind::Resume { machine } => {
                let machine = machine as usize;
                self.resume_scheduled[machine] = false;
                if self.executing[machine].is_none() {
                    self.start_next(machine, time_s);
                }
            }
            EventKind::CancelCheck { handle, generation } => {
                // A bumped generation means the job already reached a
                // terminal state (and the slot may have been recycled):
                // the event is stale.
                if self.slab.generation(handle) != generation {
                    return;
                }
                let spec = self.slab.spec(handle);
                let (machine, provider, id) = (spec.machine, spec.provider, spec.id);
                // Still a live handle but possibly executing, in which
                // case it is not in the queue and not cancellable.
                if self.queues[machine].remove_for_provider(provider, id).is_some() {
                    let (spec, pending) = self.slab.release(handle);
                    self.finish(cancelled_record(&spec, machine, time_s, pending));
                }
            }
        }
    }

    /// Record a terminal job state: aggregates always, the full record
    /// subject to background sampling. The auditor (when enabled) observes
    /// every record *before* sampling can drop it.
    fn finish(&mut self, record: JobRecord) {
        if let Some(statuses) = self.statuses.as_mut() {
            let status = match record.outcome {
                JobOutcome::Completed => JobStatus::Completed,
                JobOutcome::Errored => JobStatus::Errored,
                JobOutcome::Cancelled => JobStatus::Cancelled,
            };
            statuses.insert(record.id, status);
        }
        if let Some(a) = self.auditor.as_mut() {
            a.observe(&record);
        }
        if let Some(tap) = self.tap.as_mut() {
            tap(&record);
        }
        self.result.total_jobs += 1;
        let slot = match record.outcome {
            JobOutcome::Completed => 0,
            JobOutcome::Errored => 1,
            JobOutcome::Cancelled => 2,
        };
        self.result.outcome_counts[slot] += 1;
        if record.outcome != JobOutcome::Cancelled {
            let day = (record.end_s / 86_400.0).floor().max(0.0) as usize;
            if self.result.daily_executions.len() <= day {
                self.result.daily_executions.resize(day + 1, 0);
            }
            self.result.daily_executions[day] += record.executions();
        }
        if let Some(aggregates) = self.streaming.as_mut() {
            // Streaming sink: every record (no background sampling — the
            // sketches cover the whole population) folds into O(1) state
            // and is dropped.
            aggregates.fold(&record);
            return;
        }
        let keep = record.is_study
            || self.config.background_record_divisor <= 1
            || record.id.is_multiple_of(self.config.background_record_divisor);
        if keep {
            self.result.records.push(record);
        }
    }

    /// Dispatch the next queued job on `machine`, respecting outages.
    fn start_next(&mut self, machine: usize, now_s: f64) {
        // A machine in maintenance dispatches nothing until the window
        // ends; queued jobs keep waiting.
        if let Some(until_s) = self.outages.down_until(machine, now_s) {
            if !self.resume_scheduled[machine] && !self.queues[machine].is_empty() {
                self.resume_scheduled[machine] = true;
                self.events.push(
                    until_s,
                    self.seq,
                    EventKind::Resume {
                        machine: machine as u32,
                    },
                );
                self.seq += 1;
            }
            return;
        }
        let Some(item) = self.queues[machine].pop(now_s) else {
            return;
        };
        let spec = self.slab.spec(item.handle);
        let m = &self.fleet.machines()[machine];
        let base = m.cost_model().job_time_uniform_s(
            spec.circuits,
            spec.mean_depth.round().max(1.0) as usize,
            spec.shots,
        );
        let submit_s = spec.submit_s;
        let job_id = spec.id;
        let noisy = base * lognormal_with_cov(&mut self.rng, 1.0, self.config.exec_noise_cov);
        let (outcome, duration) = if self.rng.gen_range(0.0..1.0) < self.config.error_rate {
            // Errored jobs die partway through their execution.
            (JobOutcome::Errored, noisy * self.rng.gen_range(0.05..0.8))
        } else {
            (JobOutcome::Completed, noisy)
        };
        let end_s = now_s + duration;
        // A job's results are stale if a calibration ran anywhere between
        // submission (= compile time) and the *end* of execution: a
        // boundary crossed mid-run invalidates the results just the same
        // as one crossed while queued (paper Fig 12a). Checking against
        // the dispatch time would systematically miss long jobs.
        let crossed = m.schedule().crossover(submit_s / 3600.0, end_s / 3600.0);
        self.events.push(
            end_s,
            self.seq,
            EventKind::Completion {
                machine: machine as u32,
            },
        );
        self.seq += 1;
        if let Some(statuses) = self.statuses.as_mut() {
            statuses.insert(job_id, JobStatus::Running);
        }
        self.executing[machine] = Some(Executing {
            handle: item.handle,
            start_s: now_s,
            end_s,
            outcome,
            crossed,
        });
    }
}

/// A cancellation record at `time_s` (start == end, no execution).
fn cancelled_record(spec: &JobSpec, machine: usize, time_s: f64, pending: u32) -> JobRecord {
    JobRecord {
        id: spec.id,
        provider: spec.provider,
        machine,
        circuits: spec.circuits,
        shots: spec.shots,
        mean_width: spec.mean_width,
        mean_depth: spec.mean_depth,
        is_study: spec.is_study,
        submit_s: spec.submit_s,
        start_s: time_s,
        end_s: time_s,
        outcome: JobOutcome::Cancelled,
        pending_at_submit: pending as usize,
        crossed_calibration: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    fn job(id: u64, machine: usize, submit: f64) -> JobSpec {
        JobSpec {
            id,
            provider: (id % 4) as u32,
            machine,
            circuits: 5,
            shots: 1024,
            mean_depth: 20.0,
            mean_width: 3.0,
            submit_s: submit,
            is_study: true,
            patience_s: f64::INFINITY,
        }
    }

    fn live() -> LiveCloud {
        LiveCloud::new(Fleet::ibm_like(), CloudConfig::default())
    }

    #[test]
    fn submit_validates_machine_provider_and_clock() {
        let mut cloud = live();
        let mut bad_machine = job(0, 99, 0.0);
        bad_machine.machine = 99;
        assert!(matches!(
            cloud.submit(bad_machine),
            Err(SubmitError::UnknownMachine { job: 0, machine: 99 })
        ));
        let mut bad_provider = job(1, 1, 0.0);
        bad_provider.provider = 500;
        assert!(matches!(
            cloud.submit(bad_provider),
            Err(SubmitError::UnknownProvider { job: 1, provider: 500 })
        ));
        cloud.step_until(100.0);
        let err = cloud.submit(job(2, 1, 50.0)).unwrap_err();
        assert!(matches!(err, SubmitError::SubmitInPast { job: 2, .. }));
        assert!(err.to_string().contains("clock is already at 100"));
    }

    #[test]
    fn step_until_is_monotone_and_lazy() {
        let mut cloud = live();
        cloud.submit(job(0, 1, 50.0)).unwrap();
        cloud.step_until(10.0);
        assert_eq!(cloud.now_s(), 10.0);
        assert_eq!(cloud.queue_depth(1), 0, "job not yet arrived");
        cloud.step_until(5.0); // backwards: no-op
        assert_eq!(cloud.now_s(), 10.0);
        cloud.step_until(50.0);
        assert_eq!(cloud.queue_depth(1), 1, "arrived and dispatched");
        cloud.run_to_completion();
        assert_eq!(cloud.queue_depth(1), 0);
        assert_eq!(cloud.total_jobs(), 1);
    }

    #[test]
    fn status_tracking_follows_lifecycle() {
        let mut cloud = live().with_status_tracking();
        cloud.submit(job(0, 1, 0.0)).unwrap();
        cloud.submit(job(1, 1, 1.0)).unwrap();
        assert_eq!(cloud.status(0), Some(JobStatus::Queued));
        cloud.step_until(1.0);
        assert_eq!(cloud.status(0), Some(JobStatus::Running));
        assert_eq!(cloud.status(1), Some(JobStatus::Queued));
        assert_eq!(cloud.status(7), None);
        cloud.run_to_completion();
        let s0 = cloud.status(0).unwrap();
        assert!(s0 == JobStatus::Completed || s0 == JobStatus::Errored);
    }

    #[test]
    fn status_untracked_by_default() {
        let mut cloud = live();
        cloud.submit(job(0, 1, 0.0)).unwrap();
        cloud.step_until(0.0);
        assert_eq!(cloud.status(0), None);
    }

    #[test]
    fn record_tap_sees_every_terminal_record_under_any_sink() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        for sink in [
            RecordSink::Exact,
            RecordSink::Streaming {
                reservoir_capacity: 16,
                reservoir_seed: 1,
            },
        ] {
            let config = CloudConfig {
                record_sink: sink,
                ..CloudConfig::default()
            };
            let seen = Arc::new(AtomicU64::new(0));
            let tap_seen = Arc::clone(&seen);
            let mut cloud = LiveCloud::new(Fleet::ibm_like(), config)
                .with_record_tap(Box::new(move |record: &JobRecord| {
                    assert!(record.end_s >= record.submit_s);
                    tap_seen.fetch_add(1, Ordering::SeqCst);
                }));
            for i in 0..20 {
                cloud.submit(job(i, (i % 3) as usize, i as f64)).unwrap();
            }
            // Cancel one while queued: the tap must see cancellations too.
            cloud.step_until(19.0);
            assert!(cloud.cancel(19), "job 19 should be queued and cancellable");
            cloud.run_to_completion();
            assert_eq!(cloud.total_jobs(), 20);
            assert_eq!(
                seen.load(Ordering::SeqCst),
                20,
                "tap missed records under {sink:?}"
            );
        }
    }

    #[test]
    fn cancel_queued_job_records_cancellation() {
        let config = CloudConfig {
            error_rate: 0.0,
            audit: true,
            ..CloudConfig::default()
        };
        let mut cloud =
            LiveCloud::new(Fleet::ibm_like(), config).with_status_tracking();
        let mut blocker = job(0, 1, 0.0);
        blocker.circuits = 900;
        blocker.shots = 8192;
        cloud.submit(blocker).unwrap();
        cloud.submit(job(1, 1, 1.0)).unwrap();
        cloud.step_until(30.0);
        assert_eq!(cloud.queue_depth(1), 2);
        assert!(cloud.cancel(1), "queued job is cancellable");
        assert!(!cloud.cancel(1), "already terminal");
        assert!(!cloud.cancel(0), "running job is not cancellable");
        assert!(!cloud.cancel(99), "unknown job");
        assert_eq!(cloud.status(1), Some(JobStatus::Cancelled));
        assert_eq!(cloud.queue_depth(1), 1);
        cloud.run_to_completion();
        let result = cloud.into_result();
        assert_eq!(result.outcome_counts, [1, 0, 1]);
        let r = result.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(r.outcome, JobOutcome::Cancelled);
        assert_eq!(r.start_s, 30.0);
        assert_eq!(r.end_s, 30.0);
        result.audit.as_ref().unwrap().assert_clean();
    }

    #[test]
    fn cancel_before_arrival_leaves_no_record() {
        let mut cloud = live().with_status_tracking();
        cloud.submit(job(0, 1, 500.0)).unwrap();
        assert!(cloud.cancel(0));
        assert_eq!(cloud.status(0), Some(JobStatus::Cancelled));
        cloud.run_to_completion();
        let result = cloud.into_result();
        assert_eq!(result.total_jobs, 0, "job never entered the service");
        assert!(result.records.is_empty());
    }

    #[test]
    fn cancel_between_samples_keeps_audit_clean() {
        // A sample instant passes with the job queued; the API cancel
        // lands later, between occurrences. The retro-emitted sample must
        // reflect the pre-cancel state or the audit reconstruction fails.
        let config = CloudConfig {
            error_rate: 0.0,
            audit: true,
            sample_interval_hours: 0.01, // 36 s
            ..CloudConfig::default()
        };
        let mut cloud = LiveCloud::new(Fleet::ibm_like(), config);
        let mut blocker = job(0, 1, 0.0);
        blocker.circuits = 900;
        blocker.shots = 8192;
        cloud.submit(blocker).unwrap();
        cloud.submit(job(1, 1, 1.0)).unwrap();
        cloud.step_until(60.0); // past the 36 s sample... if an event fell there
        assert!(cloud.cancel(1));
        cloud.run_to_completion();
        let result = cloud.into_result();
        result.audit.as_ref().unwrap().assert_clean();
        assert!(!result.queue_samples.is_empty());
    }

    #[test]
    fn drain_new_records_is_incremental() {
        let config = CloudConfig {
            error_rate: 0.0,
            ..CloudConfig::default()
        };
        let mut cloud = LiveCloud::new(Fleet::ibm_like(), config);
        cloud.submit(job(0, 1, 0.0)).unwrap();
        cloud.submit(job(1, 2, 0.0)).unwrap();
        assert!(cloud.drain_new_records().is_empty());
        cloud.run_to_completion();
        let drained = cloud.drain_new_records();
        assert_eq!(drained.len(), 2);
        assert!(cloud.drain_new_records().is_empty(), "cursor advanced");
    }

    #[test]
    fn fair_share_state_visible_live() {
        let mut cloud = live();
        assert_eq!(cloud.fair_share_charged(1), Some(&[0.0; 40][..]));
        cloud.submit(job(0, 1, 0.0)).unwrap();
        cloud.run_to_completion();
        let charged = cloud.fair_share_charged(1).unwrap();
        assert!(charged[0] > 0.0, "provider 0 was charged");
        let fifo = LiveCloud::new(
            Fleet::ibm_like(),
            CloudConfig {
                discipline: crate::Discipline::Fifo,
                ..CloudConfig::default()
            },
        );
        assert_eq!(fifo.fair_share_charged(1), None);
    }

    #[test]
    fn interleaved_submission_matches_batch() {
        // Submit jobs one at a time, stepping between submissions; the
        // result must be bit-identical to the batch replay of the full
        // trace. (The property test covers random schedules; this is the
        // deterministic smoke version.)
        let jobs: Vec<JobSpec> = (0..30)
            .map(|i| job(i, (i % 3) as usize + 1, i as f64 * 40.0))
            .collect();
        let config = CloudConfig {
            audit: true,
            sample_interval_hours: 0.05,
            ..CloudConfig::default()
        };
        let batch = Simulation::new(Fleet::ibm_like(), config).run(jobs.clone());
        let mut cloud = LiveCloud::new(Fleet::ibm_like(), config);
        for j in jobs {
            let submit_s = j.submit_s;
            cloud.submit(j).unwrap();
            cloud.step_until(submit_s + 13.0);
        }
        cloud.run_to_completion();
        let result = cloud.into_result();
        assert_eq!(batch.records, result.records);
        assert_eq!(batch.queue_samples, result.queue_samples);
        assert_eq!(batch.total_jobs, result.total_jobs);
        assert_eq!(batch.outcome_counts, result.outcome_counts);
        assert_eq!(batch.daily_executions, result.daily_executions);
        result.audit.as_ref().unwrap().assert_clean();
    }

    #[test]
    fn engines_produce_identical_results() {
        // The tentpole contract in miniature: a contended multi-machine
        // trace with patience cancellations and mid-flight API cancels is
        // bit-identical across the optimized and reference engines. (The
        // des_matches_reference proptest covers random traces.)
        let jobs: Vec<JobSpec> = (0..80)
            .map(|i| {
                let mut j = job(i, (i % 3) as usize + 1, i as f64 * 7.0);
                j.circuits = 40;
                if i % 5 == 0 {
                    j.patience_s = 90.0;
                }
                j
            })
            .collect();
        let mut results = Vec::new();
        for engine in [DesEngine::Optimized, DesEngine::Reference] {
            let config = CloudConfig {
                engine,
                audit: true,
                error_rate: 0.1,
                sample_interval_hours: 0.02,
                ..CloudConfig::default()
            };
            let mut cloud = LiveCloud::new(Fleet::ibm_like(), config);
            for j in &jobs {
                cloud.submit(j.clone()).unwrap();
            }
            cloud.step_until(300.0);
            cloud.cancel(77); // still queued or pending on both engines
            cloud.run_to_completion();
            let result = cloud.into_result();
            result.audit.as_ref().unwrap().assert_clean();
            results.push(result);
        }
        assert_eq!(results[0].records, results[1].records);
        assert_eq!(results[0].queue_samples, results[1].queue_samples);
        assert_eq!(results[0].outcome_counts, results[1].outcome_counts);
        assert_eq!(results[0].daily_executions, results[1].daily_executions);
    }

    #[test]
    fn sample_grid_exact_over_long_horizons() {
        // Regression: `emit_samples_until` used to advance the sample
        // clock by repeated float addition. With a non-representable
        // interval the accumulated error drifts the grid off k * interval
        // and can eventually skip or duplicate a tick. The k-th sample
        // must land at exactly `k as f64 * interval`.
        for (interval_hours, horizon_s) in [
            (6.0, 2.0 * 365.0 * 86_400.0), // the paper's 2-year campaign
            (0.001, 86_400.0),             // 3.6 s: not representable, drifts fastest
        ] {
            let config = CloudConfig {
                sample_interval_hours: interval_hours,
                ..CloudConfig::default()
            };
            let fleet = Fleet::ibm_like();
            let machines = fleet.len();
            let mut cloud = LiveCloud::new(fleet, config);
            cloud.submit(job(0, 1, horizon_s)).unwrap();
            cloud.run_to_completion();
            // Samples run to the last processed event (the completion),
            // which lands shortly after the horizon.
            let end_s = cloud.now_s();
            let result = cloud.into_result();
            let interval_s = interval_hours * 3600.0;
            let expected_ticks = (1..)
                .take_while(|&k| k as f64 * interval_s <= end_s)
                .count();
            assert_eq!(
                result.queue_samples.len(),
                expected_ticks * machines,
                "interval {interval_hours} h: tick count drifted"
            );
            for (i, sample) in result.queue_samples.iter().enumerate() {
                let k = (i / machines + 1) as f64;
                assert_eq!(
                    sample.time_s,
                    k * interval_s,
                    "sample {i} off the k * interval grid"
                );
            }
        }
    }

    #[test]
    fn streaming_sink_matches_exact_aggregates() {
        let jobs: Vec<JobSpec> = (0..60)
            .map(|i| {
                let mut j = job(i, (i % 3) as usize + 1, i as f64 * 20.0);
                if i % 5 == 0 {
                    j.patience_s = 30.0; // force some cancellations
                }
                j
            })
            .collect();
        let exact = Simulation::new(Fleet::ibm_like(), CloudConfig::default()).run(jobs.clone());
        let config = CloudConfig {
            record_sink: crate::RecordSink::streaming(7),
            ..CloudConfig::default()
        };
        let streamed = Simulation::new(Fleet::ibm_like(), config).run(jobs);

        // Whole-population aggregates are sink-independent.
        assert_eq!(streamed.total_jobs, exact.total_jobs);
        assert_eq!(streamed.outcome_counts, exact.outcome_counts);
        assert_eq!(streamed.daily_executions, exact.daily_executions);
        assert_eq!(streamed.queue_samples, exact.queue_samples);
        // Records are folded, not accumulated.
        assert!(streamed.records.is_empty());
        assert!(exact.streaming.is_none());
        let agg = streamed.streaming.as_ref().expect("streaming sink");
        assert_eq!(agg.folded(), exact.total_jobs);
        assert_eq!(agg.cancelled(), exact.outcome_counts[2]);
        // Folding happens in terminal-event order — the same order the
        // exact path stores records — so the mean is bit-identical.
        let exact_queue_times: Vec<f64> = exact
            .records
            .iter()
            .filter(|r| r.outcome != JobOutcome::Cancelled)
            .map(JobRecord::queue_time_s)
            .collect();
        assert_eq!(
            agg.queue_time().moments().count(),
            exact_queue_times.len() as u64
        );
        assert_eq!(
            agg.queue_time().moments().mean(),
            qcs_stats::mean(&exact_queue_times)
        );
    }

    #[test]
    fn streaming_sink_visible_live_and_drains_nothing() {
        let config = CloudConfig {
            record_sink: crate::RecordSink::streaming(1),
            error_rate: 0.0,
            ..CloudConfig::default()
        };
        let mut cloud = LiveCloud::new(Fleet::ibm_like(), config);
        cloud.submit(job(0, 1, 0.0)).unwrap();
        cloud.submit(job(1, 2, 0.0)).unwrap();
        assert_eq!(cloud.pending_arrivals(), 2);
        cloud.run_to_completion();
        assert_eq!(cloud.pending_arrivals(), 0);
        assert_eq!(cloud.outcome_counts(), [2, 0, 0]);
        assert_eq!(
            cloud.streaming_aggregates().map(StreamingAggregates::folded),
            Some(2)
        );
        assert!(
            cloud.drain_new_records().is_empty(),
            "streaming sink never materializes records"
        );
    }

    #[test]
    fn injected_usage_reorders_but_preserves_charged_raw() {
        let config = CloudConfig {
            error_rate: 0.0,
            ..CloudConfig::default()
        };
        let mut cloud = LiveCloud::new(Fleet::ibm_like(), config);
        // Blocker occupies the machine while two rivals queue behind it.
        let mut blocker = job(0, 1, 0.0);
        blocker.circuits = 900;
        blocker.shots = 8192;
        cloud.submit(blocker).unwrap();
        let mut a = job(1, 1, 1.0);
        a.provider = 1;
        let mut b = job(2, 1, 2.0);
        b.provider = 2;
        cloud.submit(a).unwrap();
        cloud.submit(b).unwrap();
        cloud.step_until(10.0);
        // Provider 1 hogged another shard: locally it should now lose to
        // provider 2 despite its earlier submission.
        cloud.inject_external_usage(1, 1e6);
        cloud.run_to_completion();
        let charged = cloud
            .fair_share_charged(1)
            .expect("fair share")
            .to_vec();
        let result = cloud.into_result();
        let first = result
            .records
            .iter()
            .filter(|r| r.id != 0)
            .min_by(|x, y| x.start_s.total_cmp(&y.start_s))
            .expect("rivals ran");
        assert_eq!(first.provider, 2, "external usage demoted provider 1");
        // charged_raw still equals locally-executed seconds only.
        let executed: Vec<f64> = (0..3)
            .map(|p| {
                result
                    .records
                    .iter()
                    .filter(|r| r.provider == p && r.outcome != JobOutcome::Cancelled)
                    .map(JobRecord::exec_time_s)
                    .sum()
            })
            .collect();
        for p in 0..3 {
            assert!(
                (charged[p as usize] - executed[p as usize]).abs() < 1e-6,
                "provider {p}: charged {} != executed {}",
                charged[p as usize],
                executed[p as usize]
            );
        }
    }

    #[test]
    fn outage_respected_by_live_stepping() {
        let fleet = Fleet::ibm_like();
        let mut windows = vec![Vec::new(); fleet.len()];
        windows[1] = vec![(0.0, 1000.0)];
        let mut cloud = LiveCloud::new(fleet, CloudConfig::default())
            .with_outages(OutagePlan::from_windows(windows));
        cloud.submit(job(0, 1, 10.0)).unwrap();
        cloud.step_until(500.0);
        assert_eq!(cloud.queue_depth(1), 1, "queued through the outage");
        cloud.run_to_completion();
        let result = cloud.into_result();
        assert!((result.records[0].start_s - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn slab_recycles_slots_across_generations() {
        // A long trace through a slab whose live set stays tiny: the slab
        // must recycle slots (bounded memory) and stale cancel events
        // against recycled slots must stay inert.
        let config = CloudConfig {
            error_rate: 0.0,
            ..CloudConfig::default()
        };
        let mut cloud = LiveCloud::new(Fleet::ibm_like(), config);
        for i in 0..200u64 {
            let mut j = job(i, 1, i as f64 * 2000.0);
            j.patience_s = 1e9; // stale CancelCheck long after completion
            cloud.submit(j).unwrap();
            cloud.step_until(i as f64 * 2000.0 + 1000.0);
        }
        cloud.run_to_completion();
        assert!(
            cloud.slab.entries.len() < 20,
            "slab grew to {} entries for a live set of ~1",
            cloud.slab.entries.len()
        );
        let result = cloud.into_result();
        assert_eq!(result.total_jobs, 200);
        assert_eq!(result.outcome_counts, [200, 0, 0]);
    }
}
