//! Gateway counters, snapshotted by the `METRICS` request.

use qcs_cloud::JobOutcome;

use crate::fault::FaultKind;
use crate::retry::RetryStats;

/// Monotonic counters over the gateway's lifetime. All counts are jobs
/// unless noted; `submitted = accepted + rejected_rate +
/// rejected_backpressure + rejected_invalid`.
///
/// All increments saturate at `u64::MAX` instead of wrapping: a pinned
/// counter is an obviously-wrong reading, a wrapped one silently corrupts
/// the `submitted = accepted + rejected_*` ledger on long campaigns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayMetrics {
    /// `SUBMIT` requests received.
    pub submitted: u64,
    /// Submissions admitted into the simulator.
    pub accepted: u64,
    /// Submissions rejected by the per-provider token bucket (`BUSY`).
    pub rejected_rate: u64,
    /// Submissions rejected because the target machine's admission queue
    /// was at its bound (`BUSY`).
    pub rejected_backpressure: u64,
    /// Submissions rejected as unsatisfiable (`ERR`): unknown machine or
    /// provider, zero-size batch.
    pub rejected_invalid: u64,
    /// Jobs cancelled through the API.
    pub cancelled_via_api: u64,
    /// Jobs that reached a terminal state, per outcome
    /// `[completed, errored, cancelled]`.
    pub finished: [u64; 3],
    /// Connections accepted.
    pub connections: u64,
    /// Request lines that failed protocol validation (unparsable,
    /// non-UTF-8, or over the line-length bound) and were answered with a
    /// typed `ERR`.
    pub protocol_errors: u64,
    /// Connections closed by the idle reaper (no complete request line
    /// within the idle timeout).
    pub reaped_idle: u64,
    /// Faults injected by the active [`FaultPlan`](crate::FaultPlan),
    /// indexed by [`FaultKind::index`].
    pub faults_injected: [u64; 5],
    /// Client-side re-attempts reported back via
    /// [`absorb_client`](GatewayMetrics::absorb_client).
    pub client_retries: u64,
    /// Client-side requests abandoned with their retry budget exhausted,
    /// reported back via [`absorb_client`](GatewayMetrics::absorb_client).
    pub client_giveups: u64,
    /// `PREDICT` requests answered with an estimate (`ERR NOT_READY` and
    /// invalid-machine rejections do not count).
    pub predictions_served: u64,
}

impl GatewayMetrics {
    /// Record a terminal job record's outcome.
    pub fn observe_finished(&mut self, outcome: JobOutcome) {
        let slot = match outcome {
            JobOutcome::Completed => 0,
            JobOutcome::Errored => 1,
            JobOutcome::Cancelled => 2,
        };
        self.finished[slot] = self.finished[slot].saturating_add(1);
    }

    /// Record one injected fault.
    pub fn note_fault(&mut self, kind: FaultKind) {
        let slot = kind.index();
        self.faults_injected[slot] = self.faults_injected[slot].saturating_add(1);
    }

    /// Total faults injected across all modes.
    #[must_use]
    pub fn faults_total(&self) -> u64 {
        self.faults_injected.iter().sum()
    }

    /// Handler panics injected by [`FaultKind::PanicHandler`]. Every one
    /// of these must show up in `Gateway::handler_panics` (contained by
    /// the worker pool) — and vice versa when no other fault source
    /// exists.
    #[must_use]
    pub fn injected_panics(&self) -> u64 {
        self.faults_injected[FaultKind::PanicHandler.index()]
    }

    /// Fold a client's [`RetryStats`] into the gateway-side counters
    /// (used by tests and by operators who co-locate load generators).
    pub fn absorb_client(&mut self, stats: RetryStats) {
        self.client_retries = self.client_retries.saturating_add(stats.retries);
        self.client_giveups = self.client_giveups.saturating_add(stats.giveups);
    }

    /// Render as ordered `key=value` pairs for the `METRICS` response.
    /// `sim_time_s` is appended by the server from the live clock.
    #[must_use]
    pub fn pairs(&self) -> Vec<(String, String)> {
        [
            ("submitted", self.submitted),
            ("accepted", self.accepted),
            ("rejected_rate", self.rejected_rate),
            ("rejected_backpressure", self.rejected_backpressure),
            ("rejected_invalid", self.rejected_invalid),
            ("cancelled_via_api", self.cancelled_via_api),
            ("completed", self.finished[0]),
            ("errored", self.finished[1]),
            ("cancelled", self.finished[2]),
            ("connections", self.connections),
            ("protocol_errors", self.protocol_errors),
            ("reaped_idle", self.reaped_idle),
            ("faults_injected", self.faults_total()),
            ("injected_panics", self.injected_panics()),
            ("client_retries", self.client_retries),
            ("client_giveups", self.client_giveups),
            ("predictions_served", self.predictions_served),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_are_ordered_and_complete() {
        let mut metrics = GatewayMetrics {
            submitted: 5,
            accepted: 3,
            ..GatewayMetrics::default()
        };
        metrics.observe_finished(JobOutcome::Completed);
        metrics.observe_finished(JobOutcome::Cancelled);
        let pairs = metrics.pairs();
        assert_eq!(pairs[0], ("submitted".to_string(), "5".to_string()));
        assert_eq!(pairs[1], ("accepted".to_string(), "3".to_string()));
        let completed = pairs.iter().find(|(k, _)| k == "completed").unwrap();
        assert_eq!(completed.1, "1");
        let cancelled = pairs.iter().find(|(k, _)| k == "cancelled").unwrap();
        assert_eq!(cancelled.1, "1");
        assert_eq!(pairs.len(), 17);
        let served = pairs.iter().find(|(k, _)| k == "predictions_served").unwrap();
        assert_eq!(served.1, "0");
    }

    #[test]
    fn fault_counters_track_kinds_and_panics() {
        let mut metrics = GatewayMetrics::default();
        metrics.note_fault(FaultKind::DropConnection);
        metrics.note_fault(FaultKind::PanicHandler);
        metrics.note_fault(FaultKind::PanicHandler);
        assert_eq!(metrics.faults_total(), 3);
        assert_eq!(metrics.injected_panics(), 2);
        metrics.absorb_client(RetryStats {
            retries: 4,
            giveups: 1,
        });
        assert_eq!(metrics.client_retries, 4);
        assert_eq!(metrics.client_giveups, 1);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut metrics = GatewayMetrics {
            finished: [u64::MAX, 0, 0],
            client_retries: u64::MAX,
            ..GatewayMetrics::default()
        };
        metrics.faults_injected[FaultKind::PanicHandler.index()] = u64::MAX;
        metrics.observe_finished(JobOutcome::Completed);
        metrics.note_fault(FaultKind::PanicHandler);
        metrics.absorb_client(RetryStats {
            retries: u64::MAX,
            giveups: 2,
        });
        assert_eq!(metrics.finished[0], u64::MAX, "pinned, not wrapped");
        assert_eq!(metrics.injected_panics(), u64::MAX);
        assert_eq!(metrics.client_retries, u64::MAX);
        assert_eq!(metrics.client_giveups, 2);
    }
}
