//! Per-machine noise profiles: the generative model behind calibration
//! snapshots.
//!
//! Each machine owns a [`NoiseProfile`]; snapshots are a *pure function* of
//! `(profile, topology, cycle)`, so any component — transpiler, simulator,
//! cloud DES — can query the calibration state at any virtual time without
//! shared mutable history.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use qcs_topology::CouplingGraph;

use crate::distributions::lognormal_with_cov;
use crate::{CalibrationSnapshot, EdgeCalibration, QubitCalibration};

/// Generative parameters for a machine's noise behaviour.
///
/// Defaults follow the magnitudes the paper quotes from public IBM data and
/// the Tannu & Qureshi variability study (paper ref 39): 1q error ~1e-3, 2q error ~1e-2, readout
/// ~1e-2..1e-1, T1/T2 of tens of microseconds; spatial CoV 30–40 % for
/// coherence and ~75 % for CX errors; ~2x day-to-day swings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseProfile {
    /// Seed isolating this machine's randomness from the rest of the fleet.
    pub seed: u64,
    /// Device-mean single-qubit gate error.
    pub mean_1q_error: f64,
    /// Device-mean two-qubit (CX) gate error.
    pub mean_cx_error: f64,
    /// Device-mean readout error.
    pub mean_readout_error: f64,
    /// Device-mean T1, microseconds.
    pub mean_t1_us: f64,
    /// Device-mean T2, microseconds (clamped to <= 2*T1 per qubit).
    pub mean_t2_us: f64,
    /// Mean CX duration, nanoseconds.
    pub mean_cx_duration_ns: f64,
    /// Spatial coefficient of variation for coherence times (T1/T2).
    pub spatial_cov_coherence: f64,
    /// Spatial coefficient of variation for CX errors.
    pub spatial_cov_cx: f64,
    /// Day-to-day coefficient of variation of the device-wide error level.
    pub temporal_cov: f64,
    /// Fractional error growth per hour of drift since calibration
    /// (e.g. 0.02 = +2 %/h).
    pub drift_per_hour: f64,
}

impl Default for NoiseProfile {
    fn default() -> Self {
        NoiseProfile {
            seed: 0,
            mean_1q_error: 1e-3,
            mean_cx_error: 1.2e-2,
            mean_readout_error: 2.5e-2,
            mean_t1_us: 85.0,
            mean_t2_us: 75.0,
            mean_cx_duration_ns: 350.0,
            spatial_cov_coherence: 0.35,
            spatial_cov_cx: 0.75,
            temporal_cov: 0.35,
            drift_per_hour: 0.015,
        }
    }
}

impl NoiseProfile {
    /// A default profile with the given seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        NoiseProfile {
            seed,
            ..NoiseProfile::default()
        }
    }

    /// Scale all error means by `factor` (> 1 = noisier machine); returns
    /// the modified profile for chaining.
    #[must_use]
    pub fn scaled_errors(mut self, factor: f64) -> Self {
        self.mean_1q_error *= factor;
        self.mean_cx_error *= factor;
        self.mean_readout_error *= factor;
        self
    }

    /// Deterministically generate the calibration snapshot for calibration
    /// cycle `cycle` (one cycle per day) on the given topology.
    ///
    /// The same `(profile, topology, cycle)` triple always yields the same
    /// snapshot; consecutive cycles yield *different* snapshots (temporal
    /// variation), which is what makes stale compilations sub-optimal
    /// (paper §V-D).
    #[must_use]
    pub fn snapshot(&self, topology: &CouplingGraph, cycle: u64) -> CalibrationSnapshot {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, cycle));

        // Device-wide level for this cycle: one lognormal factor per
        // quantity family, giving the ~2x day-to-day swings of [39].
        let level_err = lognormal_with_cov(&mut rng, 1.0, self.temporal_cov);
        let level_coh = lognormal_with_cov(&mut rng, 1.0, self.temporal_cov * 0.5);

        let n = topology.num_qubits();
        let mut qubits = Vec::with_capacity(n);
        for _ in 0..n {
            let t1 = lognormal_with_cov(&mut rng, self.mean_t1_us, self.spatial_cov_coherence)
                * level_coh;
            let t2_raw = lognormal_with_cov(&mut rng, self.mean_t2_us, self.spatial_cov_coherence)
                * level_coh;
            let t2 = t2_raw.min(2.0 * t1); // physical bound T2 <= 2*T1
            let e1 = clamp_error(
                lognormal_with_cov(&mut rng, self.mean_1q_error, self.spatial_cov_cx * 0.6)
                    * level_err,
            );
            let ro = clamp_error(
                lognormal_with_cov(&mut rng, self.mean_readout_error, self.spatial_cov_cx * 0.6)
                    * level_err,
            );
            qubits.push(QubitCalibration {
                t1_us: t1,
                t2_us: t2,
                single_qubit_error: e1,
                readout_error: ro,
            });
        }

        let mut edges = BTreeMap::new();
        for &(a, b) in topology.edges() {
            let cx = clamp_error(
                lognormal_with_cov(&mut rng, self.mean_cx_error, self.spatial_cov_cx) * level_err,
            );
            let dur = lognormal_with_cov(&mut rng, self.mean_cx_duration_ns, 0.15);
            edges.insert(
                (a, b),
                EdgeCalibration {
                    cx_error: cx,
                    cx_duration_ns: dur,
                },
            );
        }
        CalibrationSnapshot::new(cycle, qubits, edges)
    }

    /// Effective error multiplier after `hours_since_calibration` of drift.
    ///
    /// Linear-in-time multiplicative drift; the paper observes that
    /// characteristics "drift over time — they can differ even within a
    /// single calibrated epoch".
    #[must_use]
    pub fn drift_factor(&self, hours_since_calibration: f64) -> f64 {
        1.0 + self.drift_per_hour * hours_since_calibration.max(0.0)
    }

    /// A snapshot with drift applied to all error quantities (coherence
    /// degrades by the same factor).
    #[must_use]
    pub fn drifted_snapshot(
        &self,
        topology: &CouplingGraph,
        cycle: u64,
        hours_since_calibration: f64,
    ) -> CalibrationSnapshot {
        let base = self.snapshot(topology, cycle);
        let f = self.drift_factor(hours_since_calibration);
        let qubits = (0..base.num_qubits())
            .map(|q| {
                let c = base.qubit(q);
                QubitCalibration {
                    t1_us: c.t1_us / f,
                    t2_us: c.t2_us / f,
                    single_qubit_error: clamp_error(c.single_qubit_error * f),
                    readout_error: clamp_error(c.readout_error * f),
                }
            })
            .collect();
        let edges = base
            .edges()
            .map(|(&e, cal)| {
                (
                    e,
                    EdgeCalibration {
                        cx_error: clamp_error(cal.cx_error * f),
                        cx_duration_ns: cal.cx_duration_ns,
                    },
                )
            })
            .collect();
        CalibrationSnapshot::new(cycle, qubits, edges)
    }
}

fn clamp_error(e: f64) -> f64 {
    e.clamp(1e-6, 0.5)
}

/// SplitMix64-style mixing of machine seed and cycle index.
fn mix(seed: u64, cycle: u64) -> u64 {
    let mut z = seed ^ cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_topology::families;

    #[test]
    fn snapshots_are_deterministic() {
        let p = NoiseProfile::with_seed(11);
        let g = families::ibm_falcon_27q();
        assert_eq!(p.snapshot(&g, 5), p.snapshot(&g, 5));
    }

    #[test]
    fn snapshots_vary_across_cycles() {
        let p = NoiseProfile::with_seed(11);
        let g = families::ibm_falcon_27q();
        assert_ne!(p.snapshot(&g, 5), p.snapshot(&g, 6));
    }

    #[test]
    fn snapshot_covers_topology() {
        let p = NoiseProfile::with_seed(3);
        let g = families::ibm_hummingbird_65q();
        let s = p.snapshot(&g, 0);
        assert!(s.covers(&g));
    }

    #[test]
    fn error_magnitudes_plausible() {
        let p = NoiseProfile::with_seed(7);
        let g = families::ibm_falcon_27q();
        // Average across many cycles: close to configured means.
        let mut cx_sum = 0.0;
        let cycles = 200;
        for c in 0..cycles {
            cx_sum += p.snapshot(&g, c).avg_cx_error();
        }
        let cx_avg = cx_sum / f64::from(cycles as u32);
        assert!(
            (cx_avg - p.mean_cx_error).abs() / p.mean_cx_error < 0.25,
            "cx avg {cx_avg} vs mean {}",
            p.mean_cx_error
        );
    }

    #[test]
    fn spatial_variation_present() {
        let p = NoiseProfile::with_seed(1);
        let g = families::ibm_hummingbird_65q();
        let s = p.snapshot(&g, 0);
        // Fleet-level claim from [39]: wide spatial variation.
        assert!(s.cx_error_cov() > 0.3, "cx cov {}", s.cx_error_cov());
        assert!(s.t1_cov() > 0.1, "t1 cov {}", s.t1_cov());
    }

    #[test]
    fn t2_respects_physical_bound() {
        let p = NoiseProfile::with_seed(9);
        let g = families::ibm_hummingbird_65q();
        let s = p.snapshot(&g, 3);
        for q in 0..s.num_qubits() {
            let c = s.qubit(q);
            assert!(c.t2_us <= 2.0 * c.t1_us + 1e-9);
        }
    }

    #[test]
    fn drift_increases_errors() {
        let p = NoiseProfile::with_seed(2);
        let g = families::line(5);
        let fresh = p.drifted_snapshot(&g, 0, 0.0);
        let stale = p.drifted_snapshot(&g, 0, 20.0);
        assert!(stale.avg_cx_error() > fresh.avg_cx_error());
        assert!(stale.avg_t1_us() < fresh.avg_t1_us());
        assert!((p.drift_factor(0.0) - 1.0).abs() < 1e-12);
        assert!(p.drift_factor(-5.0) >= 1.0); // negative time clamps
    }

    #[test]
    fn scaled_errors_scale() {
        let p = NoiseProfile::with_seed(0).scaled_errors(2.0);
        assert!((p.mean_cx_error - 2.4e-2).abs() < 1e-12);
        assert!((p.mean_1q_error - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn errors_clamped() {
        let p = NoiseProfile {
            mean_cx_error: 10.0, // absurd; must clamp to 0.5
            ..NoiseProfile::with_seed(4)
        };
        let g = families::line(3);
        let s = p.snapshot(&g, 0);
        for (_, e) in s.edges() {
            assert!(e.cx_error <= 0.5);
        }
    }
}
