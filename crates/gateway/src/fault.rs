//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is handed to
//! [`Gateway::start_with_faults`](crate::Gateway::start_with_faults) and
//! consulted once per request line. Decisions are a pure function of
//! `(plan seed, request-line bytes, simulation time)` — no wall clock, no
//! global counters — so a chaos test can *predict* exactly which requests
//! will be faulted (via [`FaultPlan::decide`], which is public for that
//! reason) and assert that everything the faults did not touch is
//! bit-identical to a fault-free run.
//!
//! Five wire/handler fault modes (one per [`FaultKind`]) plus machine
//! outages threaded into the [`LiveCloud`](qcs_cloud::LiveCloud) via
//! [`FaultPlan::outages`] cover the failure classes the cloud-QC
//! measurement papers report: dropped and half-closed connections,
//! corrupted lines, stalled (slow-loris) peers, crashed handlers, and
//! machines going down mid-job.

use std::time::Duration;

use qcs_cloud::OutagePlan;
use qcs_exec::splitmix64;

/// One injected fault, decided per request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Close the connection before the request is processed: the peer
    /// sees EOF, the simulator never sees the job.
    DropConnection,
    /// Corrupt the request line before parsing (simulated wire
    /// corruption): the server must answer a typed `ERR`, not panic.
    GarbleRequest,
    /// Process the request, then write only a prefix of the response and
    /// close: the peer sees a truncated frame (no trailing newline).
    TruncateResponse,
    /// Process the request, write half the response, stall for
    /// [`FaultPlan::partial_write_stall`], then write the rest — a
    /// server-side slow-loris that exercises client read timeouts.
    PartialWrite,
    /// Panic the connection handler before the request is processed; the
    /// worker pool must contain it and keep serving other connections.
    PanicHandler,
}

impl FaultKind {
    /// Every kind, in the order used by per-kind counters.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::DropConnection,
        FaultKind::GarbleRequest,
        FaultKind::TruncateResponse,
        FaultKind::PartialWrite,
        FaultKind::PanicHandler,
    ];

    /// Stable index into per-kind counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FaultKind::DropConnection => 0,
            FaultKind::GarbleRequest => 1,
            FaultKind::TruncateResponse => 2,
            FaultKind::PartialWrite => 3,
            FaultKind::PanicHandler => 4,
        }
    }
}

/// A seeded, sim-time-gated fault-injection plan.
///
/// Rates are in permille of request lines; the five modes draw from
/// disjoint ranges of one per-line roll, so their rates must sum to at
/// most 1000. A line rolls its fault (or none) deterministically from
/// the plan seed and the line's bytes — replaying the same request lines
/// against the same plan injects the same faults regardless of thread
/// interleaving or wall-clock timing. The flip side is intentional:
/// retrying a byte-identical request hits the byte-identical fault while
/// the plan's window is active.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed mixed into every per-line roll.
    pub seed: u64,
    /// Permille of lines whose connection is dropped before processing.
    pub drop_connection_permille: u16,
    /// Permille of lines garbled before parsing.
    pub garble_request_permille: u16,
    /// Permille of lines whose response is truncated mid-frame.
    pub truncate_response_permille: u16,
    /// Permille of lines whose response is written in two stalled halves.
    pub partial_write_permille: u16,
    /// Permille of lines whose handler panics.
    pub panic_handler_permille: u16,
    /// Faults fire only while simulation time is in
    /// `[active_from_s, active_until_s)`.
    pub active_from_s: f64,
    /// End of the active window (exclusive); `f64::INFINITY` = forever.
    pub active_until_s: f64,
    /// Wall-clock stall inserted mid-response by
    /// [`FaultKind::PartialWrite`].
    pub partial_write_stall: Duration,
    /// Machine outage windows threaded into the `LiveCloud`, so jobs
    /// experience mid-job machine downtime alongside the wire faults.
    pub outages: Option<OutagePlan>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default serving configuration).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_connection_permille: 0,
            garble_request_permille: 0,
            truncate_response_permille: 0,
            partial_write_permille: 0,
            panic_handler_permille: 0,
            active_from_s: 0.0,
            active_until_s: f64::INFINITY,
            partial_write_stall: Duration::from_millis(25),
            outages: None,
        }
    }

    /// Whether any fault mode is enabled at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.total_permille() > 0
    }

    fn total_permille(&self) -> u32 {
        u32::from(self.drop_connection_permille)
            + u32::from(self.garble_request_permille)
            + u32::from(self.truncate_response_permille)
            + u32::from(self.partial_write_permille)
            + u32::from(self.panic_handler_permille)
    }

    /// The fault (if any) this plan injects for a request line read at
    /// simulation time `now_s`. Pure: same `(plan, line, window)` → same
    /// answer. The line is hashed without its trailing newline, exactly
    /// as the server strips it.
    ///
    /// # Panics
    ///
    /// Panics if the per-mode rates sum to more than 1000 permille.
    #[must_use]
    pub fn decide(&self, line: &str, now_s: f64) -> Option<FaultKind> {
        let total = self.total_permille();
        assert!(total <= 1000, "fault rates sum to {total} > 1000 permille");
        if total == 0 || now_s < self.active_from_s || now_s >= self.active_until_s {
            return None;
        }
        // FNV-1a over the line bytes, scrambled with the seed through
        // SplitMix64: cheap, deterministic, well-mixed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in line.as_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let roll = splitmix64(self.seed ^ hash) % 1000;
        let mut edge = u64::from(self.drop_connection_permille);
        if roll < edge {
            return Some(FaultKind::DropConnection);
        }
        edge += u64::from(self.garble_request_permille);
        if roll < edge {
            return Some(FaultKind::GarbleRequest);
        }
        edge += u64::from(self.truncate_response_permille);
        if roll < edge {
            return Some(FaultKind::TruncateResponse);
        }
        edge += u64::from(self.partial_write_permille);
        if roll < edge {
            return Some(FaultKind::PartialWrite);
        }
        edge += u64::from(self.panic_handler_permille);
        if roll < edge {
            return Some(FaultKind::PanicHandler);
        }
        None
    }

    /// Deterministically corrupt a request line (the transformation
    /// applied by [`FaultKind::GarbleRequest`]): every other ASCII
    /// character is replaced with `#`, which reliably breaks the verb
    /// or a field while keeping the line valid UTF-8.
    #[must_use]
    pub fn garble(line: &str) -> String {
        line.chars()
            .enumerate()
            .map(|(i, c)| if i % 2 == 0 { '#' } else { c })
            .collect()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            drop_connection_permille: 150,
            garble_request_permille: 150,
            truncate_response_permille: 150,
            partial_write_permille: 150,
            panic_handler_permille: 150,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn inactive_plan_never_faults() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for i in 0..200 {
            assert_eq!(plan.decide(&format!("SUBMIT 0 1 {i} 1024 20 3"), 0.0), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_content_keyed() {
        let plan = noisy_plan();
        let mut faulted = 0;
        for i in 0..400 {
            let line = format!("SUBMIT 0 1 {i} 1024 20 3");
            let first = plan.decide(&line, 0.0);
            assert_eq!(first, plan.decide(&line, 0.0), "decision must be pure");
            faulted += usize::from(first.is_some());
        }
        // 75% aggregate rate over 400 lines: statistically impossible to
        // miss by this much if the hash is sane.
        assert!((200..=400).contains(&faulted), "faulted {faulted}/400");
        // Every mode fires somewhere in a sample this large.
        for kind in FaultKind::ALL {
            assert!(
                (0..400).any(|i| plan
                    .decide(&format!("SUBMIT 0 1 {i} 1024 20 3"), 0.0)
                    == Some(kind)),
                "mode {kind:?} never fired"
            );
        }
    }

    #[test]
    fn sim_time_window_gates_injection() {
        let plan = FaultPlan {
            drop_connection_permille: 1000,
            active_from_s: 100.0,
            active_until_s: 200.0,
            ..FaultPlan::none()
        };
        assert_eq!(plan.decide("SUBMIT 0 1 1 1 1 1", 99.9), None);
        assert_eq!(
            plan.decide("SUBMIT 0 1 1 1 1 1", 100.0),
            Some(FaultKind::DropConnection)
        );
        assert_eq!(plan.decide("SUBMIT 0 1 1 1 1 1", 200.0), None);
    }

    #[test]
    fn rates_partition_the_roll_space() {
        // With rates summing to 1000, every line draws some fault.
        let plan = FaultPlan {
            seed: 3,
            drop_connection_permille: 200,
            garble_request_permille: 200,
            truncate_response_permille: 200,
            partial_write_permille: 200,
            panic_handler_permille: 200,
            ..FaultPlan::none()
        };
        for i in 0..100 {
            assert!(plan.decide(&format!("STATUS {i}"), 0.0).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "permille")]
    fn oversubscribed_rates_are_rejected() {
        let plan = FaultPlan {
            drop_connection_permille: 600,
            garble_request_permille: 600,
            ..FaultPlan::none()
        };
        let _ = plan.decide("QUIT", 0.0);
    }

    #[test]
    fn garble_is_deterministic_and_breaks_the_verb() {
        let garbled = FaultPlan::garble("SUBMIT 0 1 10 1024 20 3");
        assert_eq!(garbled, FaultPlan::garble("SUBMIT 0 1 10 1024 20 3"));
        assert!(garbled.starts_with('#'));
        assert!(crate::Request::parse(&garbled).is_err());
    }

    #[test]
    fn seed_changes_the_fault_pattern() {
        let a = FaultPlan { seed: 1, ..noisy_plan() };
        let b = FaultPlan { seed: 2, ..noisy_plan() };
        let differs = (0..200).any(|i| {
            let line = format!("CANCEL {i}");
            a.decide(&line, 0.0) != b.decide(&line, 0.0)
        });
        assert!(differs, "seed must influence decisions");
    }
}
