//! O(1)-memory streaming statistics for million-job traces.
//!
//! The exact descriptive path ([`crate::Summary`], [`crate::quantile`])
//! materializes the whole sample; at 10⁶⁺ jobs that Vec dominates memory.
//! This module provides constant-memory substitutes that the exact path
//! audits on small traces:
//!
//! - [`StreamingMoments`]: count / mean / variance / CoV via a Welford
//!   accumulator plus a plain running sum. `count` and `mean` are
//!   **bit-identical** to [`crate::mean`] when samples are folded in slice
//!   order (the sum is the same left fold); variance and CoV agree with the
//!   two-pass oracle to ~1e-9 relative (Welford is at least as accurate,
//!   but rounds differently).
//! - [`P2Quantile`]: the Jain–Chlamtac P² online quantile estimator —
//!   five markers, no buffering. Exact (matching [`crate::quantile`])
//!   below five samples; afterwards an estimate whose error on unimodal
//!   job-metric distributions is typically well under 5 % of the
//!   interquartile range (the documented tolerance used by the
//!   streaming-vs-exact property tests).
//! - [`ReservoirSample`]: seeded Algorithm-R uniform reservoir, feeding
//!   violin/KDE plots that need raw sample points.
//! - [`StreamingSummary`]: the bundle of all three shaped like
//!   [`crate::Summary`].
//!
//! All types reject NaN pushes (matching [`crate::quantile`]'s contract:
//! a NaN in a sample is a caller bug).

use crate::descriptive::{quantile_sorted, Summary};

/// Welford online moments plus an order-preserving running sum.
///
/// `mean()` is computed as `sum / count` so it is bit-identical to
/// [`crate::mean`] over the same values in the same order; the Welford
/// `(mean, m2)` pair backs `variance()` without a second pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamingMoments {
    count: u64,
    sum: f64,
    w_mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingMoments {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        StreamingMoments {
            count: 0,
            sum: 0.0,
            w_mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN — a NaN would silently poison every moment.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "streaming moments of NaN are undefined");
        self.count += 1;
        self.sum += x;
        let delta = x - self.w_mean;
        self.w_mean += delta / self.count as f64;
        self.m2 += delta * (x - self.w_mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations folded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (left fold, same rounding as `iter().sum()`).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; 0 when empty (matching [`crate::mean`]).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance; 0 below two samples (matching
    /// [`crate::variance`] up to Welford-vs-two-pass rounding).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std / |mean|); 0 if the mean is 0
    /// (matching [`crate::coefficient_of_variation`]).
    #[must_use]
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m.abs()
        }
    }

    /// Minimum observation; +inf when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; -inf when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Absorb another accumulator (Chan et al. parallel combine). Used to
    /// roll per-shard moments up to fleet level; the merged mean keeps the
    /// `sum / count` definition, so it is bit-identical to a single global
    /// sum only when the shard sums happen to add in the same order.
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.w_mean - self.w_mean;
        self.m2 += other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.w_mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// P² (Jain & Chlamtac 1985) online estimator of a single quantile.
///
/// Five markers track the running min, max, target quantile and its two
/// flanking mid-quantiles; marker heights move by parabolic (falling back
/// to linear) interpolation as observations arrive. Memory is five
/// `(height, position)` pairs regardless of stream length. Exact for the
/// first five observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2Quantile {
    q: f64,
    count: u64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
}

impl P2Quantile {
    /// Estimator for the `q`-quantile.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn new(q: f64) -> Self {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        P2Quantile {
            q,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
        }
    }

    /// The target quantile.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations folded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN (see [`crate::quantile`]).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "quantile of a sample containing NaN is undefined");
        self.count += 1;
        if self.count <= 5 {
            // Bootstrap: insert into the sorted marker prefix.
            let n = self.count as usize;
            self.heights[n - 1] = x;
            self.heights[..n].sort_by(f64::total_cmp);
            return;
        }

        // Locate the cell, stretching the extreme markers if needed.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k + 1]
            (0..4)
                .rfind(|&i| self.heights[i] <= x)
                .unwrap_or(0)
        };

        for pos in &mut self.positions[k + 1..] {
            *pos += 1.0;
        }
        for (des, inc) in self.desired.iter_mut().zip(self.increments) {
            *des += inc;
        }

        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let room_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let room_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && room_up) || (d <= -1.0 && room_down) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (h, n) = (&self.heights, &self.positions);
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate; `None` when empty. Exact (matching
    /// [`crate::quantile`]) for up to five observations.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n <= 5 => quantile_sorted(&self.heights[..n as usize], self.q),
            _ => Some(self.heights[2]),
        }
    }
}

/// Seeded Algorithm-R reservoir: a uniform fixed-capacity sample of an
/// unbounded stream, deterministic per `(seed, input order)`. Feeds violin
/// summaries ([`crate::ViolinSummary`]) that need raw points.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservoirSample {
    capacity: usize,
    seen: u64,
    state: u64,
    samples: Vec<f64>,
}

impl ReservoirSample {
    /// Reservoir holding at most `capacity` samples.
    #[must_use]
    pub fn new(capacity: usize, seed: u64) -> Self {
        ReservoirSample {
            capacity,
            seen: 0,
            state: seed,
            samples: Vec::with_capacity(capacity.min(1024)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (same generator as train_test_split).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Offer one observation to the reservoir.
    pub fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(x);
        } else if self.capacity > 0 {
            let j = self.next_u64() % self.seen;
            if (j as usize) < self.capacity {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Total observations offered (not retained).
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained sample, in reservoir order.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Constant-memory stand-in for [`Summary`]: Welford moments plus P²
/// quartile markers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingSummary {
    moments: StreamingMoments,
    q1: P2Quantile,
    median: P2Quantile,
    q3: P2Quantile,
}

impl Default for StreamingSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingSummary {
    /// An empty streaming summary.
    #[must_use]
    pub fn new() -> Self {
        StreamingSummary {
            moments: StreamingMoments::new(),
            q1: P2Quantile::new(0.25),
            median: P2Quantile::new(0.5),
            q3: P2Quantile::new(0.75),
        }
    }

    /// Fold one observation into every component.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn push(&mut self, x: f64) {
        self.moments.push(x);
        self.q1.push(x);
        self.median.push(x);
        self.q3.push(x);
    }

    /// The moment accumulator (count / mean / variance / CoV).
    #[must_use]
    pub fn moments(&self) -> &StreamingMoments {
        &self.moments
    }

    /// Render as a [`Summary`]. `count`, `min`, `max` match the exact
    /// path; `mean` is bit-identical to [`crate::mean`] in fold order
    /// (note [`Summary::of`] averages a *sorted* copy, which rounds
    /// differently at the ulp level); quartiles and `std_dev` are
    /// estimates. All-zero when empty, like `Summary::of(&[])`.
    #[must_use]
    pub fn to_summary(&self) -> Summary {
        if self.moments.count() == 0 {
            return Summary::default();
        }
        Summary {
            count: self.moments.count() as usize,
            min: self.moments.min(),
            q1: self.q1.estimate().unwrap_or(f64::NAN),
            median: self.median.estimate().unwrap_or(f64::NAN),
            q3: self.q3.estimate().unwrap_or(f64::NAN),
            max: self.moments.max(),
            mean: self.moments.mean(),
            std_dev: self.moments.std_dev(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{coefficient_of_variation, mean, quantile, variance, Summary};

    fn ramp(n: usize) -> Vec<f64> {
        // Deterministic but rough sequence: a skewed sawtooth.
        (0..n)
            .map(|i| {
                let k = (i * 2_654_435_761) % 1_000_003;
                (k as f64 / 1000.0).powf(1.3)
            })
            .collect()
    }

    #[test]
    fn moments_mean_bit_identical() {
        let values = ramp(10_000);
        let mut m = StreamingMoments::new();
        for &v in &values {
            m.push(v);
        }
        assert_eq!(m.count(), values.len() as u64);
        assert_eq!(m.mean(), mean(&values));
        assert_eq!(m.min(), values.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(
            m.max(),
            values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        );
    }

    #[test]
    fn moments_variance_and_cov_close() {
        let values = ramp(10_000);
        let mut m = StreamingMoments::new();
        for &v in &values {
            m.push(v);
        }
        let exact_var = variance(&values);
        assert!((m.variance() - exact_var).abs() <= 1e-9 * exact_var.abs().max(1.0));
        let exact_cov = coefficient_of_variation(&values);
        assert!((m.coefficient_of_variation() - exact_cov).abs() <= 1e-9 * exact_cov.max(1.0));
    }

    #[test]
    fn moments_empty_matches_oracle() {
        let m = StreamingMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn moments_single_sample() {
        let mut m = StreamingMoments::new();
        m.push(7.5);
        assert_eq!(m.mean(), 7.5);
        assert_eq!(m.variance(), 0.0);
        assert_eq!((m.min(), m.max()), (7.5, 7.5));
    }

    #[test]
    fn moments_merge_matches_single_pass() {
        let values = ramp(5_000);
        let (a, b) = values.split_at(1_234);
        let mut left = StreamingMoments::new();
        let mut right = StreamingMoments::new();
        for &v in a {
            left.push(v);
        }
        for &v in b {
            right.push(v);
        }
        left.merge(&right);

        let mut whole = StreamingMoments::new();
        for &v in &values {
            whole.push(v);
        }
        assert_eq!(left.count(), whole.count());
        // Partial sums round differently from one sequential fold; the
        // merged mean agrees to ulp-level, not bit-exactly.
        assert!((left.mean() - whole.mean()).abs() <= 1e-12 * whole.mean().abs());
        assert!((left.variance() - whole.variance()).abs() <= 1e-9 * whole.variance());
        assert_eq!((left.min(), left.max()), (whole.min(), whole.max()));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m = StreamingMoments::new();
        m.push(1.0);
        m.push(2.0);
        let before = m;
        m.merge(&StreamingMoments::new());
        assert_eq!(m, before);
        let mut empty = StreamingMoments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn moments_reject_nan() {
        StreamingMoments::new().push(f64::NAN);
    }

    #[test]
    fn p2_exact_below_five_samples() {
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let mut p = P2Quantile::new(q);
            assert_eq!(p.estimate(), None);
            let values = [9.0, -3.0, 4.5, 0.0];
            for (i, &v) in values.iter().enumerate() {
                p.push(v);
                assert_eq!(p.estimate(), quantile(&values[..=i], q), "q={q} n={}", i + 1);
            }
        }
    }

    #[test]
    fn p2_tracks_known_quantiles() {
        // Tolerance documented in the module docs: 5% of the IQR on
        // unimodal streams.
        let values = ramp(50_000);
        for q in [0.25, 0.5, 0.75, 0.9, 0.99] {
            let mut p = P2Quantile::new(q);
            for &v in &values {
                p.push(v);
            }
            let exact = quantile(&values, q).expect("non-empty");
            let iqr = quantile(&values, 0.75).expect("non-empty")
                - quantile(&values, 0.25).expect("non-empty");
            assert!(
                (p.estimate().expect("non-empty") - exact).abs() <= 0.05 * iqr,
                "q={q}: p2={:?} exact={exact} iqr={iqr}",
                p.estimate()
            );
        }
    }

    #[test]
    fn p2_monotone_markers_stay_bounded() {
        let values = ramp(10_000);
        let mut p = P2Quantile::new(0.5);
        for &v in &values {
            p.push(v);
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let est = p.estimate().expect("non-empty");
        assert!((lo..=hi).contains(&est), "estimate {est} outside [{lo}, {hi}]");
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn p2_rejects_out_of_range_q() {
        let _ = P2Quantile::new(1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn p2_rejects_nan() {
        P2Quantile::new(0.5).push(f64::NAN);
    }

    #[test]
    fn reservoir_keeps_everything_under_capacity() {
        let mut r = ReservoirSample::new(100, 42);
        for i in 0..80 {
            r.push(i as f64);
        }
        assert_eq!(r.seen(), 80);
        assert_eq!(r.samples().len(), 80);
        assert_eq!(r.samples()[17], 17.0);
    }

    #[test]
    fn reservoir_caps_and_stays_deterministic() {
        let run = |seed| {
            let mut r = ReservoirSample::new(64, seed);
            for i in 0..10_000 {
                r.push(i as f64);
            }
            r.samples().to_vec()
        };
        let a = run(7);
        assert_eq!(a.len(), 64);
        assert_eq!(a, run(7));
        assert_ne!(a, run(8));
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Mean of a uniform reservoir over 0..n should be near n/2.
        let mut r = ReservoirSample::new(512, 3);
        let n = 100_000;
        for i in 0..n {
            r.push(i as f64);
        }
        let m = mean(r.samples());
        assert!(
            (m - n as f64 / 2.0).abs() < 0.1 * n as f64,
            "reservoir mean {m} far from {}",
            n / 2
        );
    }

    #[test]
    fn zero_capacity_reservoir_is_inert() {
        let mut r = ReservoirSample::new(0, 1);
        r.push(1.0);
        r.push(2.0);
        assert_eq!(r.seen(), 2);
        assert!(r.samples().is_empty());
    }

    #[test]
    fn streaming_summary_matches_exact_on_small_trace() {
        let values = [3.0, 1.0, 2.0, 5.0, 4.0];
        let mut s = StreamingSummary::new();
        for &v in &values {
            s.push(v);
        }
        let exact = Summary::of(&values);
        let streamed = s.to_summary();
        // <= 5 samples: P2 is still in its exact bootstrap phase.
        assert_eq!(streamed, exact);
    }

    #[test]
    fn streaming_summary_empty_is_default() {
        assert_eq!(StreamingSummary::new().to_summary(), Summary::default());
    }

    #[test]
    fn streaming_summary_large_trace_tolerances() {
        let values = ramp(20_000);
        let mut s = StreamingSummary::new();
        for &v in &values {
            s.push(v);
        }
        let exact = Summary::of(&values);
        let streamed = s.to_summary();
        assert_eq!(streamed.count, exact.count);
        // Bit-identity holds against mean() in fold order; Summary::of
        // averages the *sorted* copy, which rounds differently.
        assert_eq!(streamed.mean, mean(&values));
        assert!((streamed.mean - exact.mean).abs() <= 1e-12 * exact.mean.abs());
        assert_eq!(streamed.min, exact.min);
        assert_eq!(streamed.max, exact.max);
        let iqr = exact.q3 - exact.q1;
        for (got, want) in [
            (streamed.q1, exact.q1),
            (streamed.median, exact.median),
            (streamed.q3, exact.q3),
        ] {
            assert!((got - want).abs() <= 0.05 * iqr, "got {got} want {want}");
        }
    }
}
