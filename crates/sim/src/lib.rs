//! # qcs-sim
//!
//! Quantum circuit simulation for the `qcs` quantum-cloud study: an ideal
//! [`Statevector`] engine, measurement [`Counts`], and a calibration-driven
//! Monte-Carlo [`NoisySimulator`] that substitutes for real-hardware
//! execution in the paper's fidelity experiments (Fig 7).
//!
//! # Examples
//!
//! ```
//! use qcs_calibration::NoiseProfile;
//! use qcs_sim::{probability_of_success, qft_pos_circuit, NoisySimulator};
//! use qcs_topology::families;
//!
//! let circuit = qft_pos_circuit(3);
//! let snapshot = NoiseProfile::with_seed(1).snapshot(&families::complete(3), 0);
//! let counts = NoisySimulator::with_seed(7).run(&circuit, &snapshot, 1024)?;
//! let pos = probability_of_success(&counts, 0);
//! assert!(pos > 0.5); // mild noise, small circuit
//! # Ok::<(), qcs_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
mod complex;
mod counts;
mod equivalence;
pub mod fusion;
mod kernels;
mod noisy;
mod statevector;

pub use backend::{
    sparse_amplitudes, BackendChoice, BackendDispatcher, BackendKind, BackendPlan,
    CircuitProfile, SimBackend, MAX_CLBITS, SPARSE_MAX_AMPS, SPARSE_MAX_QUBITS,
    STABILIZER_MAX_QUBITS,
};
pub use complex::Complex;
pub use equivalence::equivalent_unitaries;
pub use counts::Counts;
pub use fusion::CompiledCircuit;
pub use kernels::{norm_from_probs, probability_one_from_probs, SimdPolicy, SvExec, LANES};
pub use noisy::{
    clbit_distribution, clifford_pos_circuit, measurement_map, probability_of_success,
    qft_pos_circuit, used_clbit_width, NoisySimulator, DENSE_DISTRIBUTION_MAX_WIDTH,
};
pub use statevector::{CdfSampler, SimError, Statevector, DENSE_MAX_QUBITS};
