//! Algorithmic correctness of the benchmark library, validated end to end
//! through the statevector simulator.

use qcs::circuit::library;
use qcs::sim::clbit_distribution;

#[test]
fn grover_finds_the_marked_state() {
    for (n, marked) in [(2usize, 0b01u64), (3, 0b101), (4, 0b1101)] {
        let c = library::grover(n, marked);
        let dist = clbit_distribution(&c).unwrap();
        let p = dist[marked as usize];
        // Optimal-iteration Grover success probabilities: 100% at n=2,
        // >94% at n=3, >96% at n=4.
        assert!(p > 0.9, "grover {n}q found marked with p={p}");
        // And the marked state is the argmax.
        let max = dist.iter().cloned().fold(0.0f64, f64::max);
        assert!((p - max).abs() < 1e-12);
    }
}

#[test]
fn phase_estimation_reads_exact_phases() {
    // phase = k / 2^precision is representable: outcome is exactly k.
    for precision in 2usize..=4 {
        for k in [1u64, (1 << precision) - 1, 1 << (precision - 1)] {
            let phase = k as f64 / f64::powi(2.0, precision as i32);
            let c = library::phase_estimation(precision, phase);
            let dist = clbit_distribution(&c).unwrap();
            let p = dist[k as usize];
            assert!(
                p > 0.999,
                "QPE precision={precision} phase={phase}: P[{k}]={p}"
            );
        }
    }
}

#[test]
fn phase_estimation_concentrates_for_inexact_phase() {
    // An unrepresentable phase still peaks at the nearest k.
    let precision = 4;
    let phase = 0.3; // nearest 4-bit fraction: 5/16 = 0.3125
    let c = library::phase_estimation(precision, phase);
    let dist = clbit_distribution(&c).unwrap();
    let argmax = dist
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(argmax, 5, "QPE should round 0.3 to 5/16");
    assert!(dist[5] > 0.4);
}

#[test]
fn grover_survives_transpilation() {
    use qcs::topology::families;
    use qcs::transpiler::{transpile, Target, TranspileOptions};
    let c = library::grover(3, 0b110);
    let target = Target::uniform("falcon", families::ibm_falcon_27q(), 5);
    let compiled = transpile(&c, &target, TranspileOptions::full()).unwrap();
    let (compact, _) = compiled.circuit.compacted();
    let dist = clbit_distribution(&compact).unwrap();
    assert!(dist[0b110] > 0.9, "transpiled grover degraded: {}", dist[0b110]);
}
