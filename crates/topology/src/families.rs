//! Generators for the topology families used by real quantum machines and
//! the classical comparison topologies from the paper (Fig 6).

use crate::CouplingGraph;

/// A linear chain `0 - 1 - ... - n-1` (IBM's 5-qubit "linear" devices).
#[must_use]
pub fn line(n: usize) -> CouplingGraph {
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    CouplingGraph::from_edges(n, &edges)
}

/// A ring of `n` qubits.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn ring(n: usize) -> CouplingGraph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    edges.push((n - 1, 0));
    CouplingGraph::from_edges(n, &edges)
}

/// A `rows x cols` 2D mesh — the classical comparison topology in Fig 6
/// (a 64-node mesh has bisection bandwidth 8).
#[must_use]
pub fn grid(rows: usize, cols: usize) -> CouplingGraph {
    let n = rows * cols;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                edges.push((id, id + 1));
            }
            if r + 1 < rows {
                edges.push((id, id + cols));
            }
        }
    }
    CouplingGraph::from_edges(n, &edges)
}

/// A star: node 0 coupled to all others.
#[must_use]
pub fn star(n: usize) -> CouplingGraph {
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
    CouplingGraph::from_edges(n, &edges)
}

/// A fully-connected graph (trapped-ion-style all-to-all connectivity).
#[must_use]
pub fn complete(n: usize) -> CouplingGraph {
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((a, b));
        }
    }
    CouplingGraph::from_edges(n, &edges)
}

/// IBM's 5-qubit "T" layout (Vigo, Ourense, Valencia):
///
/// ```text
/// 0 - 1 - 2
///     |
///     3
///     |
///     4
/// ```
#[must_use]
pub fn ibm_t_5q() -> CouplingGraph {
    CouplingGraph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)])
}

/// IBM's 5-qubit "bowtie" layout (Yorktown):
///
/// ```text
/// 0   3
/// |\ /|
/// | 2 |
/// |/ \|
/// 1   4
/// ```
#[must_use]
pub fn ibm_bowtie_5q() -> CouplingGraph {
    CouplingGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])
}

/// IBM's 7-qubit "H" layout (Casablanca, Jakarta, Lagos):
///
/// ```text
/// 0       4
/// |       |
/// 1 - 3 - 5
/// |       |
/// 2       6
/// ```
#[must_use]
pub fn ibm_h_7q() -> CouplingGraph {
    CouplingGraph::from_edges(7, &[(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)])
}

/// IBM's 15-qubit ladder (Melbourne): two rows with rung couplings.
#[must_use]
pub fn ibm_melbourne_15q() -> CouplingGraph {
    CouplingGraph::from_edges(
        15,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (7, 8),
            (8, 9),
            (9, 10),
            (10, 11),
            (11, 12),
            (12, 13),
            (13, 14),
            (0, 14),
            (1, 13),
            (2, 12),
            (3, 11),
            (4, 10),
            (5, 9),
            (6, 8),
        ],
    )
}

/// IBM's 16-qubit Falcon r4 layout (Guadalupe) — a single heavy-hex cell
/// with spurs.
#[must_use]
pub fn ibm_guadalupe_16q() -> CouplingGraph {
    CouplingGraph::from_edges(
        16,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 5),
            (1, 4),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
        ],
    )
}

/// IBM's 27-qubit Falcon layout (Toronto, Paris, Sydney, Montreal, Mumbai).
#[must_use]
pub fn ibm_falcon_27q() -> CouplingGraph {
    CouplingGraph::from_edges(
        27,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 5),
            (1, 4),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
            (14, 16),
            (15, 18),
            (16, 19),
            (17, 18),
            (18, 21),
            (19, 20),
            (19, 22),
            (21, 23),
            (22, 25),
            (23, 24),
            (24, 25),
            (25, 26),
        ],
    )
}

/// IBM's 65-qubit Hummingbird heavy-hex layout (Manhattan, Brooklyn):
/// five rows of qubits joined by vertical connector qubits. The paper
/// reports its bisection bandwidth as 3 (Fig 6).
#[must_use]
pub fn ibm_hummingbird_65q() -> CouplingGraph {
    let mut edges = Vec::new();
    // Row qubit index ranges: r0: 0..=9, r1: 13..=23, r2: 27..=37,
    // r3: 41..=51, r4: 55..=64. Connectors: 10,11,12 / 24,25,26 /
    // 38,39,40 / 52,53,54.
    let rows: [(usize, usize); 5] = [(0, 9), (13, 23), (27, 37), (41, 51), (55, 64)];
    for &(lo, hi) in &rows {
        for q in lo..hi {
            edges.push((q, q + 1));
        }
    }
    // Connectors between row 0 and row 1.
    edges.extend_from_slice(&[(0, 10), (4, 11), (8, 12), (10, 13), (11, 17), (12, 21)]);
    // Row 1 -> row 2.
    edges.extend_from_slice(&[(15, 24), (19, 25), (23, 26), (24, 29), (25, 33), (26, 37)]);
    // Row 2 -> row 3.
    edges.extend_from_slice(&[(27, 38), (31, 39), (35, 40), (38, 41), (39, 45), (40, 49)]);
    // Row 3 -> row 4.
    edges.extend_from_slice(&[(43, 52), (47, 53), (51, 54), (52, 56), (53, 60), (54, 64)]);
    CouplingGraph::from_edges(65, &edges)
}

/// A generic heavy-hex-style lattice with `rows` qubit rows of width
/// `row_len`, used to model hypothetical future machines (e.g. the
/// ~1000-qubit target of Fig 5).
///
/// Every other row boundary alternates connector alignment, mirroring the
/// IBM hummingbird pattern. Connector spacing is 4 row positions.
///
/// # Panics
///
/// Panics if `rows == 0` or `row_len < 5`.
#[must_use]
pub fn heavy_hex(rows: usize, row_len: usize) -> CouplingGraph {
    assert!(rows > 0 && row_len >= 5, "heavy hex needs rows>0, row_len>=5");
    let mut edges = Vec::new();
    let connectors_per_gap = (row_len - 1) / 4 + 1;
    let mut id = 0usize;
    let mut row_start = Vec::new();
    for _ in 0..rows {
        row_start.push(id);
        for q in 0..row_len - 1 {
            edges.push((id + q, id + q + 1));
        }
        id += row_len;
        id += connectors_per_gap; // reserve connector ids after each row
    }
    let total = id - connectors_per_gap; // last row has no trailing connectors
    for r in 0..rows - 1 {
        let conn_base = row_start[r] + row_len;
        for k in 0..connectors_per_gap {
            let conn = conn_base + k;
            // Alternate alignment between even and odd gaps.
            let offset = if r % 2 == 0 { 4 * k } else { (4 * k + 2).min(row_len - 1) };
            let top = row_start[r] + offset.min(row_len - 1);
            let bottom = row_start[r + 1] + offset.min(row_len - 1);
            edges.push((top, conn));
            edges.push((conn, bottom));
        }
    }
    CouplingGraph::from_edges(total, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_ring_degrees() {
        let l = line(5);
        assert_eq!(l.degree(0), 1);
        assert_eq!(l.degree(2), 2);
        let r = ring(5);
        assert!(r.is_connected());
        assert!((0..5).all(|q| r.degree(q) == 2));
    }

    #[test]
    fn grid_structure() {
        let g = grid(8, 8);
        assert_eq!(g.num_qubits(), 64);
        assert_eq!(g.num_edges(), 2 * 8 * 7);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(14));
    }

    #[test]
    fn star_and_complete() {
        let s = star(6);
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.diameter(), Some(2));
        let k = complete(6);
        assert_eq!(k.num_edges(), 15);
        assert_eq!(k.diameter(), Some(1));
    }

    #[test]
    fn ibm_small_layouts_connected() {
        for g in [ibm_t_5q(), ibm_bowtie_5q(), ibm_h_7q()] {
            assert!(g.is_connected());
        }
        assert_eq!(ibm_t_5q().num_qubits(), 5);
        assert_eq!(ibm_h_7q().num_qubits(), 7);
    }

    #[test]
    fn melbourne_is_ladder() {
        let g = ibm_melbourne_15q();
        assert_eq!(g.num_qubits(), 15);
        assert!(g.is_connected());
        assert!(g.average_degree() > 2.0);
    }

    #[test]
    fn guadalupe_and_falcon_shapes() {
        let g = ibm_guadalupe_16q();
        assert_eq!(g.num_qubits(), 16);
        assert!(g.is_connected());
        let f = ibm_falcon_27q();
        assert_eq!(f.num_qubits(), 27);
        assert!(f.is_connected());
        // Heavy-hex graphs are sparse: max degree 3.
        assert!((0..27).all(|q| f.degree(q) <= 3));
    }

    #[test]
    fn hummingbird_shape() {
        let g = ibm_hummingbird_65q();
        assert_eq!(g.num_qubits(), 65);
        assert!(g.is_connected());
        assert!((0..65).all(|q| g.degree(q) <= 3));
        assert_eq!(g.num_edges(), 72);
    }

    #[test]
    fn heavy_hex_generator_scales() {
        let g = heavy_hex(5, 11);
        assert!(g.is_connected());
        assert!((0..g.num_qubits()).all(|q| g.degree(q) <= 3));
        let big = heavy_hex(19, 45);
        assert!(big.num_qubits() > 900 && big.num_qubits() < 1100);
        assert!(big.is_connected());
    }
}
