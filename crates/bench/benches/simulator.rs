//! Criterion benchmarks of the statevector and noisy simulators (the
//! substrate behind Fig 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcs_calibration::NoiseProfile;
use qcs_circuit::library;
use qcs_sim::{qft_pos_circuit, CompiledCircuit, NoisySimulator, SimdPolicy, Statevector, SvExec};
use qcs_topology::families;

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_qft");
    for n in [8usize, 12, 16] {
        let circuit = library::qft(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| Statevector::from_circuit(circuit).unwrap());
        });
    }
    group.finish();
}

fn bench_simd_blocks(c: &mut Criterion) {
    // The SIMD + block-parallel headline: the 16-qubit QFT compiled once,
    // executed under the sequential scalar policy (the oracle), the
    // single-thread wide (f64x4-chunked) path, and the wide path on a
    // full block team — plus a block-granularity sweep. Amplitudes are
    // bit-identical across every point (blocked_wide_kernels_match_
    // scalar_amplitudes); only wall-clock may differ.
    let circuit = library::qft(16);
    let compiled = CompiledCircuit::compile(&circuit);
    let cores = qcs_exec::ExecConfig::default().effective_threads(usize::MAX);
    let mut group = c.benchmark_group("statevector_qft16_kernels");
    let points = [
        ("scalar", SvExec::scalar()),
        (
            "wide",
            SvExec::auto().with_simd(SimdPolicy::Wide).with_threads(1),
        ),
        (
            "wide_blocks",
            SvExec::auto().with_simd(SimdPolicy::Wide).with_threads(cores),
        ),
    ];
    for (name, sv) in points {
        group.bench_with_input(BenchmarkId::new("policy", name), &sv, |b, sv| {
            b.iter(|| compiled.execute_with(sv).unwrap());
        });
    }
    // Block-size sweep at the full team width: pairs per block, 0 = one
    // contiguous chunk per worker.
    for block_pairs in [1024usize, 4096, 16384] {
        let sv = SvExec::auto()
            .with_simd(SimdPolicy::Wide)
            .with_threads(cores)
            .with_block_pairs(block_pairs);
        group.bench_with_input(
            BenchmarkId::new("block_pairs", block_pairs),
            &sv,
            |b, sv| {
                b.iter(|| compiled.execute_with(sv).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_noisy_run(c: &mut Criterion) {
    let circuit = qft_pos_circuit(4);
    let snapshot = NoiseProfile::with_seed(1).snapshot(&families::complete(4), 0);
    let mut group = c.benchmark_group("noisy_qft4_pos");
    for shots in [1024u32, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(shots), &shots, |b, &shots| {
            b.iter(|| {
                NoisySimulator::with_seed(7)
                    .run(&circuit, &snapshot, shots)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_parallel_trajectories(c: &mut Criterion) {
    // The execution-engine scaling benchmark: a 16-trajectory 10-qubit
    // workload (the acceptance workload for the >= 2x @ 4-threads
    // criterion) swept across worker-pool sizes. Counts are bit-identical
    // across the whole sweep. `QCS_THREADS=t` appends an extra point for
    // machines whose interesting core count isn't in the default sweep.
    let circuit = qft_pos_circuit(10);
    let snapshot = NoiseProfile::with_seed(1).snapshot(&families::complete(10), 0);
    let mut thread_counts = vec![1usize, 2, 4, 8];
    let env = qcs_exec::ExecConfig::from_env().threads;
    if env != 0 && !thread_counts.contains(&env) {
        thread_counts.push(env);
    }
    let mut group = c.benchmark_group("noisy_qft10_traj16");
    for threads in thread_counts {
        let sim = NoisySimulator {
            trajectories: 16,
            seed: 7,
            ..NoisySimulator::default()
        }
        .with_threads(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &sim, |b, sim| {
            b.iter(|| sim.run(&circuit, &snapshot, 16_384).unwrap());
        });
    }
    group.finish();

    // The pre-fusion per-instruction path, kept as the bit-identity
    // oracle: its single-thread time over `run`'s is the speedup the
    // fused + skip-ahead + pooled path buys (BENCH_sim.json).
    let reference = NoisySimulator {
        trajectories: 16,
        seed: 7,
        ..NoisySimulator::default()
    }
    .with_threads(1);
    let mut group = c.benchmark_group("noisy_qft10_traj16_reference");
    group.bench_with_input(BenchmarkId::new("threads", 1usize), &reference, |b, sim| {
        b.iter(|| sim.run_reference(&circuit, &snapshot, 16_384).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector,
    bench_simd_blocks,
    bench_noisy_run,
    bench_parallel_trajectories
);
criterion_main!(benches);
