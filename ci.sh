#!/usr/bin/env bash
# Local CI gate: release build, full test suite, and zero-warning clippy.
# Run from the repository root before pushing.
set -euo pipefail

cargo build --release
cargo test -q

# Invariant gates: the DES must match the brute-force reference simulator
# record-for-record, and the end-to-end study must pass under the auditor.
# Both run inside `cargo test -q` too; the explicit invocations keep the
# gates visible and fail fast with a focused report.
cargo test -q -p qcs-cloud
cargo test -q --test properties des_matches_reference
cargo test -q --test end_to_end_study audit_invariants_hold_on_smoke_study

# Live-core gates: the incremental stepping engine must be bit-identical
# to the batch run on random traces/disciplines/outages/step schedules,
# and the gateway loopback smoke test (8 concurrent clients, forced
# backpressure, graceful drain) must end with a clean audit.
cargo test -q --test properties live_matches_batch
cargo test -q --test gateway_smoke
cargo test -q -p qcs-gateway

# Chaos gate: every fault mode (drops, garbles, truncations, slow-loris
# writes, handler panics, machine outages) against concurrent clients,
# with a clean audited drain and bit-identical fault-free replay.
cargo test -q --test chaos_gateway

# Bench-smoke gate: one short criterion run of the fusion bench; the
# fused kernels must not be slower than per-instruction dispatch on the
# transpiled-QFT workload (the simulator's real input shape).
bench_out=$(QCS_BENCH_WARMUP_MS=200 QCS_BENCH_MEASURE_MS=1200 cargo bench -p qcs-bench --bench fusion 2>/dev/null | grep '^BENCH')
unfused=$(printf '%s\n' "$bench_out" | grep 'fusion_qft10/unfused' | sed 's/.*"mean_ns"://; s/,.*//')
fused=$(printf '%s\n' "$bench_out" | grep '"id":"fusion_qft10/fused"' | sed 's/.*"mean_ns"://; s/,.*//')
awk -v f="$fused" -v u="$unfused" 'BEGIN {
  if (f == "" || u == "") { print "bench-smoke: missing fusion bench output"; exit 1 }
  if (f > u * 1.10) { printf "bench-smoke: fused %.0f ns > unfused %.0f ns\n", f, u; exit 1 }
  printf "bench-smoke: fused %.0f ns <= unfused %.0f ns (+10%% headroom)\n", f, u
}'

# SIMD gate: the f64x4-chunked wide path must not be slower than the
# scalar fused oracle on the same workload, same in-process run (the two
# are bit-identical, so wide slower than scalar means the dispatch rules
# regressed). 10% headroom absorbs shared-runner timer noise; a real
# regression (wide falling back to scalar-shaped codegen) shows up as
# 15%+ on this workload.
wide=$(printf '%s\n' "$bench_out" | grep '"id":"fusion_qft10/wide"' | sed 's/.*"mean_ns"://; s/,.*//')
awk -v w="$wide" -v f="$fused" 'BEGIN {
  if (w == "" || f == "") { print "bench-smoke: missing wide bench output"; exit 1 }
  if (w > f * 1.10) { printf "bench-smoke: wide %.0f ns > fused %.0f ns\n", w, f; exit 1 }
  printf "bench-smoke: wide %.0f ns <= fused %.0f ns (+10%% headroom)\n", w, f
}'

cargo clippy --all-targets -- -D warnings

# The simulation and transpilation hot paths carry the bit-reproducibility
# guarantees, and qcs-exec carries the unsafe worker-team/block-schedule
# primitives under them; keep their crates individually warning-clean
# (fail fast, focused report) on top of the workspace-wide gate above.
cargo clippy -p qcs-sim --all-targets --no-deps -- -D warnings
cargo clippy -p qcs-transpiler --all-targets --no-deps -- -D warnings
cargo clippy -p qcs-exec --all-targets --no-deps -- -D warnings

# The serving crate must be panic-free on untrusted input: no unwrap or
# expect in non-test gateway code (--no-deps keeps the deny flags from
# leaking into dependency crates).
cargo clippy -p qcs-gateway --no-deps -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "ci.sh: all checks passed"
