//! Fig 2: cumulative machine executions over the study (a) and job
//! execution status breakdown (b).

use qcs_bench::{study_from_args, write_csv};

fn main() {
    let study = study_from_args();

    let series = study.cumulative_study_executions();
    println!("Fig 2a — cumulative study executions (paper: ~10B over 2 years, accelerating)");
    // Print decade milestones the way the log-scale plot reads.
    let mut next_decade = 1e6f64;
    for &(day, total) in &series {
        if (total as f64) >= next_decade {
            println!("  day {day:>3}: {:>14} executions", total);
            while (total as f64) >= next_decade {
                next_decade *= 10.0;
            }
        }
    }
    if let Some(&(day, total)) = series.last() {
        println!("  day {day:>3}: {total:>14} executions (end of study)");
    }
    write_csv(
        "fig02a_cumulative_executions.csv",
        "day,cumulative_study_executions",
        series.iter().map(|(d, t)| format!("{d},{t}")),
    );

    let (completed, errored, cancelled) = study.outcome_fractions();
    println!("\nFig 2b — job status (paper: ~95% success, ~5% wasted)");
    println!("  completed: {:.2}%", 100.0 * completed);
    println!("  errored  : {:.2}%", 100.0 * errored);
    println!("  cancelled: {:.2}%", 100.0 * cancelled);
    write_csv(
        "fig02b_outcomes.csv",
        "outcome,fraction",
        vec![
            format!("completed,{completed}"),
            format!("errored,{errored}"),
            format!("cancelled,{cancelled}"),
        ],
    );
}
